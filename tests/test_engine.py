"""Tier-1 tests for the unified solve engine (``repro.engine``).

Covers the PR-3 contract (docs/ENGINE.md):

* registry completeness — every packing export is claimed by a spec;
* warm-cache solves are value-identical to cold ones for every
  registered angle solver;
* mutation safety — cached solutions come back as independent copies;
* LRU eviction under ``maxsize`` with eviction counters;
* hit/miss/eviction counter names match ``docs/OBSERVABILITY.md``;
* the ``auto`` planner picks exact on small instances and an
  approximation under a tight deadline;
* ``solve_many`` batching with partial-result semantics.
"""

import pathlib

import numpy as np
import pytest

from repro.engine import (
    SolveRequest,
    SolverSpec,
    check_registry,
    clear_caches,
    fingerprint,
    get_spec,
    plan,
    register,
    smoke_check,
    solve,
    solve_many,
    solver_names,
    specs,
)
from repro.engine.cache import (
    COMPILE_CACHE,
    RESULT_CACHE,
    RESULT_CACHE_MAXSIZE,
    LruCache,
)
from repro.model import generators as gen
from repro.obs.metrics import get_registry

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


@pytest.fixture(autouse=True)
def fresh_state():
    clear_caches()
    get_registry().reset()
    yield
    clear_caches()


def small_angle(seed=0, k=2):
    return gen.uniform_angles(n=8, k=k, seed=seed)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registry_is_complete(self):
        assert check_registry() == []

    def test_every_family_has_specs(self):
        for family in ("angle", "sector", "covering", "knapsack", "online"):
            assert solver_names(family), f"no specs for {family}"

    def test_angle_core_solvers_registered(self):
        names = set(solver_names("angle"))
        assert {"greedy", "greedy+ls", "exact", "exact-anytime"} <= names

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="greedy"):
            get_spec("angle", "nope")

    def test_duplicate_registration_rejected(self):
        spec = get_spec("angle", "greedy")
        with pytest.raises(ValueError, match="duplicate"):
            register(spec)

    def test_unknown_family_rejected(self):
        bad = SolverSpec(name="x", family="quantum", run=lambda i, c: None)
        with pytest.raises(ValueError, match="unknown family"):
            register(bad)

    def test_accepts_gates_engine_solve(self):
        inst = small_angle(k=2)
        with pytest.raises(ValueError, match="k == 1"):
            solve(SolveRequest(instance=inst, algorithm="single"))

    def test_smoke_check_all_specs_run(self):
        assert smoke_check() == []


# ----------------------------------------------------------------------
# Result cache: warm == cold for every registered angle solver
# ----------------------------------------------------------------------
class TestCacheIdentity:
    @pytest.mark.parametrize("name", [s.name for s in specs("angle")])
    def test_warm_value_identical_to_cold(self, name):
        spec = get_spec("angle", name)
        inst = small_angle(k=1 if name == "single" else 2)
        assert spec.rejects(inst) is None

        cold = solve(SolveRequest(instance=inst, algorithm=name, seed=7))
        warm = solve(SolveRequest(instance=inst, algorithm=name, seed=7))
        assert not cold.cached
        assert warm.cached
        assert warm.value == cold.value  # exactly, not approximately
        assert warm.algorithm == cold.algorithm == name
        assert warm.extra == cold.extra

    def test_equal_content_shares_cache_across_objects(self):
        a = small_angle(seed=3)
        b = small_angle(seed=3)  # distinct object, same content
        assert a is not b
        assert fingerprint(a) == fingerprint(b)
        cold = solve(SolveRequest(instance=a, algorithm="greedy"))
        warm = solve(SolveRequest(instance=b, algorithm="greedy"))
        assert warm.cached and warm.value == cold.value

    def test_key_includes_eps_and_seed(self):
        inst = small_angle()
        solve(SolveRequest(instance=inst, algorithm="greedy", eps=0.5))
        other_eps = solve(SolveRequest(instance=inst, algorithm="greedy", eps=0.25))
        other_seed = solve(
            SolveRequest(instance=inst, algorithm="greedy", eps=0.5, seed=1)
        )
        assert not other_eps.cached
        assert not other_seed.cached

    def test_budgeted_solves_never_cached(self):
        inst = small_angle()
        first = solve(
            SolveRequest(instance=inst, algorithm="greedy", timeout_s=30.0)
        )
        second = solve(
            SolveRequest(instance=inst, algorithm="greedy", timeout_s=30.0)
        )
        assert not first.cached and not second.cached
        assert len(RESULT_CACHE) == 0

    def test_use_cache_false_bypasses(self):
        inst = small_angle()
        solve(SolveRequest(instance=inst, algorithm="greedy", use_cache=False))
        again = solve(
            SolveRequest(instance=inst, algorithm="greedy", use_cache=False)
        )
        assert not again.cached
        assert len(RESULT_CACHE) == 0


# ----------------------------------------------------------------------
# Mutation safety
# ----------------------------------------------------------------------
class TestMutationSafety:
    def test_cached_solutions_are_independent_copies(self):
        inst = small_angle()
        solve(SolveRequest(instance=inst, algorithm="greedy"))
        warm1 = solve(SolveRequest(instance=inst, algorithm="greedy"))
        warm2 = solve(SolveRequest(instance=inst, algorithm="greedy"))
        assert warm1.cached and warm2.cached
        assert warm1.solution is not warm2.solution
        assert not np.shares_memory(
            warm1.solution.assignment, warm2.solution.assignment
        )

    def test_mutating_a_returned_solution_cannot_poison_the_cache(self):
        inst = small_angle()
        baseline = solve(SolveRequest(instance=inst, algorithm="greedy"))
        victim = solve(SolveRequest(instance=inst, algorithm="greedy"))
        victim.solution.assignment[:] = -1  # reject everything, in place
        victim.solution.orientations[:] = 0.0
        after = solve(SolveRequest(instance=inst, algorithm="greedy"))
        assert after.cached
        assert after.value == baseline.value
        np.testing.assert_array_equal(
            after.solution.assignment, baseline.solution.assignment
        )


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_evicts_oldest_and_counts(self):
        reg = get_registry()
        cache = LruCache("engine.cache", maxsize=2)  # shares the counters
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert reg.snapshot()["engine.cache.evictions"]["value"] == 1

    def test_result_cache_bounded_under_resize(self):
        reg = get_registry()
        RESULT_CACHE.resize(2)
        try:
            for seed in range(4):
                solve(SolveRequest(instance=small_angle(seed=seed), algorithm="greedy"))
            assert len(RESULT_CACHE) == 2
            assert reg.snapshot()["engine.cache.evictions"]["value"] == 2
            # The newest entry survived; the oldest was evicted.
            newest = solve(
                SolveRequest(instance=small_angle(seed=3), algorithm="greedy")
            )
            oldest = solve(
                SolveRequest(instance=small_angle(seed=0), algorithm="greedy")
            )
            assert newest.cached and not oldest.cached
        finally:
            RESULT_CACHE.resize(RESULT_CACHE_MAXSIZE)


# ----------------------------------------------------------------------
# Metric naming (contract: docs/OBSERVABILITY.md)
# ----------------------------------------------------------------------
class TestMetricNames:
    CACHE_COUNTERS = [
        "engine.cache.hits",
        "engine.cache.misses",
        "engine.cache.evictions",
        "engine.compile.hits",
        "engine.compile.misses",
        "engine.compile.evictions",
    ]

    def test_cold_then_warm_counter_arithmetic(self):
        reg = get_registry()
        inst = small_angle()
        solve(SolveRequest(instance=inst, algorithm="greedy"))
        solve(SolveRequest(instance=inst, algorithm="greedy"))
        snap = reg.snapshot()
        assert snap["engine.cache.misses"]["value"] == 1
        assert snap["engine.cache.hits"]["value"] == 1
        assert snap["engine.requests"]["value"] == 2
        assert snap["engine.solve"]["count"] == 1  # warm hit skips the timer

    def test_planner_counter(self):
        reg = get_registry()
        solve(SolveRequest(instance=small_angle(), algorithm="auto"))
        solve(SolveRequest(instance=small_angle(), algorithm="greedy",
                           use_cache=False))
        assert reg.snapshot()["engine.planned"]["value"] == 1

    def test_counter_names_are_documented(self):
        text = (DOCS / "OBSERVABILITY.md").read_text()
        for name in self.CACHE_COUNTERS + ["engine.requests", "engine.planned",
                                           "engine.solve"]:
            assert name in text, f"{name} missing from docs/OBSERVABILITY.md"


# ----------------------------------------------------------------------
# Compiled-instance sharing
# ----------------------------------------------------------------------
class TestCompileSharing:
    def test_solvers_share_compiled_views_across_algorithms(self):
        reg = get_registry()
        inst = small_angle()
        solve(SolveRequest(instance=inst, algorithm="dp-disjoint",
                           use_cache=False))
        misses_after_first = reg.snapshot()["engine.compile.misses"]["value"]
        solve(SolveRequest(instance=inst, algorithm="greedy",
                           use_cache=False))
        snap = reg.snapshot()
        assert snap["engine.compile.misses"]["value"] == misses_after_first
        assert snap["engine.compile.hits"]["value"] > 0

    def test_shared_compiled_candidates_are_read_only(self):
        from repro.engine.cache import shared_compiled

        inst = small_angle()
        cand = shared_compiled(inst).candidates()
        with pytest.raises((ValueError, RuntimeError)):
            cand[0] = 0.0


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_small_instance_plans_exact(self):
        assert plan(small_angle(), "angle") == "exact"

    def test_tight_deadline_plans_approximation(self):
        choice = plan(small_angle(), "angle", timeout_s=0.5)
        spec = get_spec("angle", choice)
        assert spec.complexity == "poly" and not spec.exact

    def test_mid_and_large_instances(self):
        mid = gen.uniform_angles(n=60, k=4, seed=0)
        large = gen.uniform_angles(n=500, k=4, seed=0)
        assert plan(mid, "angle") == "greedy+ls"
        assert plan(large, "angle") == "greedy"

    def test_variant_routing(self):
        inst = small_angle()
        assert plan(inst, "angle", variant="fractional") == "splittable"
        assert plan(inst, "angle", variant="disjoint") == "dp-disjoint"

    def test_single_antenna_routes_to_single(self):
        assert plan(small_angle(k=1), "angle") == "single"

    def test_guarantee_picks_cheapest_meeting_it(self):
        inst = gen.uniform_angles(n=60, k=4, seed=0)
        name = plan(inst, "angle", guarantee=0.4)
        spec = get_spec("angle", name)
        assert spec.guarantee_fn is not None
        assert spec.guarantee_fn(1.0) >= 0.4

    def test_unreachable_guarantee_raises(self):
        inst = gen.uniform_angles(n=60, k=4, seed=0)
        # With a 0.5-approximate oracle (eps=0.5) no polynomial solver
        # can promise 0.99 of OPT.
        with pytest.raises(ValueError, match="guarantee"):
            plan(inst, "angle", guarantee=0.99, eps=0.5)

    def test_sector_rules(self):
        small = gen.grid_city(n=8, seed=0)
        if small.total_antennas <= 3:
            assert plan(small, "sector") == "exact"
        assert plan(small, "sector", timeout_s=0.5) == "greedy"
        assert plan(gen.grid_city(n=80, seed=0), "sector") == "greedy"

    def test_end_to_end_auto_report_is_marked_planned(self):
        report = solve(SolveRequest(instance=small_angle(), algorithm="auto"))
        assert report.planned
        assert report.algorithm == "exact"
        direct = solve(
            SolveRequest(instance=small_angle(), algorithm="exact",
                         use_cache=False)
        )
        assert report.value == pytest.approx(direct.value, abs=1e-12)

    def test_auto_under_tight_timeout_still_answers(self):
        report = solve(
            SolveRequest(instance=small_angle(), algorithm="auto", timeout_s=1.0)
        )
        assert report.planned
        assert not get_spec("angle", report.algorithm).exact


# ----------------------------------------------------------------------
# Engine-vs-direct value identity
# ----------------------------------------------------------------------
class TestEngineMatchesDirectCalls:
    def test_greedy_matches_direct(self):
        from repro.knapsack import get_solver
        from repro.packing import solve_greedy_multi

        inst = small_angle()
        direct = solve_greedy_multi(inst, get_solver("exact")).value(inst)
        report = solve(SolveRequest(instance=inst, algorithm="greedy"))
        assert report.value == pytest.approx(direct, abs=1e-12)

    def test_exact_matches_direct(self):
        from repro.packing import solve_exact_angle

        inst = small_angle()
        direct = solve_exact_angle(inst).value(inst)
        report = solve(SolveRequest(instance=inst, algorithm="exact"))
        assert report.value == pytest.approx(direct, abs=1e-12)

    def test_sector_greedy_matches_direct(self):
        from repro.knapsack import get_solver
        from repro.packing import solve_sector_greedy

        inst = gen.grid_city(n=12, seed=0)
        direct = solve_sector_greedy(inst, get_solver("exact")).value(inst)
        report = solve(SolveRequest(instance=inst, algorithm="greedy"))
        assert report.family == "sector"
        assert report.value == pytest.approx(direct, abs=1e-12)


# ----------------------------------------------------------------------
# solve_many
# ----------------------------------------------------------------------
class TestSolveMany:
    def test_order_and_labels_preserved(self):
        reqs = [
            SolveRequest(instance=small_angle(seed=s), algorithm="greedy",
                         label=f"seed{s}")
            for s in range(3)
        ]
        reports = solve_many(reqs)
        assert [r.label for r in reports] == ["seed0", "seed1", "seed2"]
        assert all(r.error is None and r.value > 0 for r in reports)

    def test_partial_failure_reports_instead_of_raising(self):
        reqs = [
            SolveRequest(instance=small_angle(), algorithm="greedy", label="ok"),
            SolveRequest(instance=small_angle(k=2), algorithm="single",
                         label="bad"),
        ]
        reports = solve_many(reqs)
        assert reports[0].error is None
        assert reports[1].error is not None
        assert "k == 1" in reports[1].error
        assert reports[1].solution is None

    def test_allow_partial_false_raises(self):
        reqs = [
            SolveRequest(instance=small_angle(k=2), algorithm="single"),
        ]
        with pytest.raises(RuntimeError, match="single"):
            solve_many(reqs, allow_partial=False)

    def test_mixed_families_in_one_batch(self):
        reqs = [
            SolveRequest(instance=small_angle(), algorithm="greedy"),
            SolveRequest(instance=gen.grid_city(n=10, seed=0),
                         algorithm="greedy"),
            SolveRequest(
                instance=(np.array([1.0, 2.0]), np.array([1.0, 3.0]), 2.5),
                family="knapsack", algorithm="exact",
            ),
        ]
        reports = solve_many(reqs)
        assert [r.family for r in reports] == ["angle", "sector", "knapsack"]
        assert all(r.error is None for r in reports)


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_content_not_identity(self):
        assert fingerprint(small_angle(seed=1)) == fingerprint(small_angle(seed=1))
        assert fingerprint(small_angle(seed=1)) != fingerprint(small_angle(seed=2))

    def test_sector_fingerprints(self):
        a = gen.grid_city(n=10, seed=0)
        b = gen.grid_city(n=10, seed=0)
        assert fingerprint(a) == fingerprint(b)

    def test_unfingerprintable_raises(self):
        with pytest.raises(TypeError):
            fingerprint({"not": "an instance"})
