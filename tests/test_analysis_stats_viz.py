"""Tests for instance statistics and ASCII visualisation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    InstanceStats,
    best_window_share,
    circular_concentration,
    gini,
    instance_stats,
)
from repro.analysis.viz import render_instance, render_loads, render_solution
from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model import generators as gen
from repro.packing.multi import solve_greedy_multi


class TestGini:
    def test_equal_values_zero(self):
        assert gini(np.ones(10)) == pytest.approx(0.0, abs=1e-12)

    def test_one_whale_near_one(self):
        v = np.array([1e-6] * 99 + [1.0])
        assert gini(v) > 0.9

    def test_known_value(self):
        # two values a, b: G = |a-b| / (2*(a+b)) * 2 = (b-a)/(a+b) for b>a... use direct
        assert gini(np.array([1.0, 3.0])) == pytest.approx(0.25)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            gini(np.array([]))
        with pytest.raises(ValueError):
            gini(np.array([1.0, 0.0]))

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=30))
    def test_range(self, vals):
        g = gini(np.array(vals))
        assert -1e-9 <= g < 1.0

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20),
           st.floats(min_value=0.1, max_value=10))
    def test_scale_invariant(self, vals, c):
        v = np.array(vals)
        assert gini(v) == pytest.approx(gini(c * v), abs=1e-9)


class TestCircularConcentration:
    def test_point_mass(self):
        assert circular_concentration(np.full(10, 1.3)) == pytest.approx(1.0)

    def test_uniform_near_zero(self):
        t = np.linspace(0, TWO_PI, 1000, endpoint=False)
        assert circular_concentration(t) < 1e-10

    def test_empty(self):
        assert circular_concentration(np.empty(0)) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=TWO_PI), min_size=1, max_size=30))
    def test_range(self, thetas):
        r = circular_concentration(np.array(thetas))
        assert -1e-9 <= r <= 1.0 + 1e-9


class TestBestWindowShare:
    def test_full_circle_is_one(self):
        inst = gen.uniform_angles(n=20, k=1, rho=TWO_PI, seed=0)
        assert best_window_share(inst) == pytest.approx(1.0)

    def test_cluster_captured(self):
        inst = AngleInstance(
            thetas=np.array([0.0, 0.1, 3.0]),
            demands=np.array([1.0, 1.0, 1.0]),
            antennas=(AntennaSpec(rho=0.5, capacity=1.0),),
        )
        assert best_window_share(inst) == pytest.approx(2.0 / 3.0)

    def test_explicit_rho(self):
        inst = gen.uniform_angles(n=20, k=1, rho=0.2, seed=0)
        assert best_window_share(inst, rho=TWO_PI) == pytest.approx(1.0)

    def test_empty(self):
        inst = AngleInstance(
            thetas=np.empty(0), demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert best_window_share(inst) == 0.0


class TestInstanceStats:
    def test_fields(self):
        inst = gen.clustered_angles(n=30, k=2, seed=1)
        s = instance_stats(inst)
        assert s.n == 30 and s.k == 2
        assert s.tightness > 0
        assert 0 <= s.demand_gini < 1
        assert 0 <= s.concentration <= 1
        assert 0 < s.hotspot_share <= 1
        d = s.as_dict()
        assert set(d) == {
            "n", "k", "tightness", "demand_gini",
            "max_demand_ratio", "concentration", "hotspot_share",
        }

    def test_hotspot_family_concentrated(self):
        hot = instance_stats(gen.hotspot_angles(n=50, seed=0))
        uni = instance_stats(gen.uniform_angles(n=50, seed=0))
        assert hot.concentration > uni.concentration

    def test_empty_instance(self):
        inst = AngleInstance(
            thetas=np.empty(0), demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        s = instance_stats(inst)
        assert s.n == 0 and s.tightness == 0.0


class TestViz:
    def make(self):
        inst = gen.clustered_angles(n=25, k=2, seed=3)
        sol = solve_greedy_multi(inst, get_solver("greedy"))
        return inst, sol

    def test_render_instance_shape(self):
        inst, _ = self.make()
        out = render_instance(inst, width=60)
        lines = out.splitlines()
        assert len(lines) == 2
        assert all(len(l) == 60 + len("customers  |") + 1 for l in lines)

    def test_render_instance_min_width(self):
        inst, _ = self.make()
        with pytest.raises(ValueError):
            render_instance(inst, width=8)

    def test_render_solution_rows(self):
        inst, sol = self.make()
        out = render_solution(inst, sol, width=60)
        lines = out.splitlines()
        assert len(lines) == inst.k + 1
        assert "=" in lines[0]

    def test_render_full_circle_arc(self):
        inst = gen.uniform_angles(n=5, k=1, rho=TWO_PI, seed=0)
        sol = solve_greedy_multi(inst, get_solver("greedy"))
        out = render_solution(inst, sol, width=40)
        assert out.splitlines()[0].count("=") >= 38

    def test_render_wrapping_arc(self):
        inst = AngleInstance(
            thetas=np.array([0.1]),
            demands=np.array([1.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=2.0),),
        )
        from repro.model.solution import AngleSolution

        sol = AngleSolution(orientations=np.array([TWO_PI - 0.5]),
                            assignment=np.array([0]))
        out = render_solution(inst, sol, width=40)
        row = out.splitlines()[0]
        assert row.split("|")[1][0] == "="  # wraps into column 0

    def test_render_loads(self):
        inst, sol = self.make()
        out = render_loads(inst, sol, width=20)
        lines = out.splitlines()
        assert len(lines) == inst.k
        assert all("/" in l for l in lines)

    def test_served_glyphs(self):
        inst, sol = self.make()
        out = render_solution(inst, sol, width=72)
        served_line = out.splitlines()[-1]
        assert any(ch.isdigit() for ch in served_line)
