"""Tests for the LP relaxation, rounding, flow assignment, and bounds."""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model import generators as gen
from repro.packing.bounds import (
    capacity_upper_bound,
    combined_upper_bound,
    fractional_rotation_upper_bound,
)
from repro.packing.exact import solve_exact_angle
from repro.packing.flow import covered_matrix, solve_splittable, splittable_value
from repro.packing.lp import lp_upper_bound, solve_lp_relaxation, solve_lp_rounding
from repro.packing.multi import solve_greedy_multi

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def small_instance(seed, n=7, k=2):
    rng = np.random.default_rng(seed)
    rho = float(rng.uniform(0.5, 2.5))
    demands = rng.uniform(0.3, 2.0, n)
    cap = 0.4 * demands.sum()
    return AngleInstance(
        thetas=rng.uniform(0, TWO_PI, n),
        demands=demands,
        antennas=tuple(AntennaSpec(rho=rho, capacity=cap) for _ in range(k)),
    )


class TestCoveredMatrix:
    def test_values(self):
        inst = AngleInstance(
            thetas=np.array([0.5, 2.0]),
            demands=np.ones(2),
            antennas=(
                AntennaSpec(rho=1.0, capacity=1.0),
                AntennaSpec(rho=1.0, capacity=1.0),
            ),
        )
        m = covered_matrix(inst, [0.0, 1.5])
        assert m.tolist() == [[True, False], [False, True]]

    def test_shape_validation(self):
        inst = small_instance(0)
        with pytest.raises(ValueError):
            covered_matrix(inst, [0.0])


class TestFlow:
    @pytest.mark.parametrize("seed", range(6))
    def test_splittable_upper_bounds_exact_fixed(self, seed):
        inst = small_instance(seed)
        rng = np.random.default_rng(seed)
        ori = rng.uniform(0, TWO_PI, inst.k)
        from repro.packing.exact import solve_exact_fixed_orientations

        integral = solve_exact_fixed_orientations(inst, ori).value(inst)
        split = splittable_value(inst, ori)
        assert split >= integral - 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_flow_matches_lp_path(self, seed):
        # profit == demand: the max-flow and LP paths agree
        inst = small_instance(seed)
        ori = np.zeros(inst.k)
        f1 = solve_splittable(inst, ori, force_lp=False)
        f2 = solve_splittable(inst, ori, force_lp=True)
        f1.verify(inst)
        f2.verify(inst)
        assert f1.value(inst) == pytest.approx(f2.value(inst), abs=1e-6)

    def test_general_profits_lp(self):
        rng = np.random.default_rng(1)
        inst = AngleInstance(
            thetas=rng.uniform(0, TWO_PI, 8),
            demands=rng.uniform(0.5, 2.0, 8),
            profits=rng.uniform(0.5, 4.0, 8),
            antennas=(AntennaSpec(rho=2.0, capacity=3.0),),
        )
        sol = solve_splittable(inst, [1.0])
        sol.verify(inst)

    def test_empty_instance(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        sol = solve_splittable(inst, [0.0])
        assert sol.value(inst) == 0.0

    def test_splittable_saturates_capacity(self):
        inst = AngleInstance(
            thetas=np.array([0.1, 0.2, 0.3]),
            demands=np.array([2.0, 2.0, 2.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=3.0),),
        )
        assert splittable_value(inst, [0.0]) == pytest.approx(3.0)


class TestLpBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_upper_bounds_opt(self, seed):
        inst = small_instance(seed)
        opt = solve_exact_angle(inst).value(inst)
        assert lp_upper_bound(inst) >= opt - 1e-6

    def test_tighten_never_increases(self):
        inst = small_instance(3)
        loose = lp_upper_bound(inst, tighten=False)
        tight = lp_upper_bound(inst, tighten=True)
        assert tight <= loose + 1e-6

    def test_relaxation_returns_distributions(self):
        inst = small_instance(0)
        value, y, cands = solve_lp_relaxation(inst)
        assert len(y) == inst.k
        for j, yj in enumerate(y):
            assert len(yj) == len(cands[j])
            assert yj.sum() <= 1.0 + 1e-6

    def test_empty_instance(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert lp_upper_bound(inst) == 0.0


class TestLpRounding:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_and_half_reasonable(self, seed):
        inst = small_instance(seed)
        sol = solve_lp_rounding(inst, EXACT, rounds=10, seed=seed)
        sol.verify(inst)
        opt = solve_exact_angle(inst).value(inst)
        # no formal guarantee claimed, but it should never be terrible here
        assert sol.value(inst) >= 0.3 * opt - 1e-9

    def test_max_candidates_subsampling(self):
        inst = gen.uniform_angles(n=30, k=2, seed=0)
        sol = solve_lp_rounding(inst, GREEDY, rounds=3, max_candidates=5)
        sol.verify(inst)

    def test_deterministic_with_seed(self):
        inst = small_instance(2)
        a = solve_lp_rounding(inst, EXACT, rounds=5, seed=7)
        b = solve_lp_rounding(inst, EXACT, rounds=5, seed=7)
        assert a.value(inst) == b.value(inst)


class TestBounds:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_bounds_above_opt(self, seed):
        inst = small_instance(seed)
        opt = solve_exact_angle(inst).value(inst)
        assert capacity_upper_bound(inst) >= opt - 1e-9
        assert fractional_rotation_upper_bound(inst) >= opt - 1e-9
        assert combined_upper_bound(inst) >= opt - 1e-9
        assert combined_upper_bound(inst, use_lp=True) >= opt - 1e-6

    def test_combined_is_min(self):
        inst = small_instance(1)
        c = combined_upper_bound(inst)
        assert c <= capacity_upper_bound(inst) + 1e-12
        assert c <= fractional_rotation_upper_bound(inst) + 1e-12
        assert c <= inst.total_profit + 1e-12

    def test_capacity_bound_profit_demand(self):
        inst = small_instance(0)
        expected = min(inst.total_demand, float(sum(a.capacity for a in inst.antennas)))
        assert capacity_upper_bound(inst) == pytest.approx(expected)

    def test_empty(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert capacity_upper_bound(inst) == 0.0
        assert combined_upper_bound(inst) == 0.0

    def test_fractional_bound_tighter_for_narrow_antennas(self):
        # narrow rho: geometry limits reach; fractional bound should bite
        inst = gen.clustered_angles(n=40, k=2, rho=0.1, capacity_fraction=0.5, seed=5)
        frac = fractional_rotation_upper_bound(inst)
        cap = capacity_upper_bound(inst)
        assert frac <= cap + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_clears_guarantee_vs_bound(self, seed):
        # end-to-end certification pattern used by the benchmarks
        inst = gen.uniform_angles(n=30, k=2, seed=seed)
        sol = solve_greedy_multi(inst, EXACT)
        ub = combined_upper_bound(inst)
        assert sol.value(inst) >= 0.5 * sol.value(inst)  # sanity
        assert sol.value(inst) <= ub + 1e-9
