"""End-to-end tests for the CLI (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.model.serialization import load_instance, solution_from_dict


def run(argv):
    return main([str(a) for a in argv])


class TestGenerate:
    def test_angle_family(self, tmp_path, capsys):
        out = tmp_path / "i.json"
        assert run(["generate", "uniform", out, "--seed", "1",
                    "--params", '{"n": 12, "k": 2}']) == 0
        inst = load_instance(out)
        assert inst.n == 12
        assert "wrote" in capsys.readouterr().out

    def test_sector_family(self, tmp_path):
        out = tmp_path / "s.json"
        assert run(["generate", "disk", out, "--params", '{"n": 10}']) == 0
        inst = load_instance(out)
        assert inst.n == 10

    def test_unknown_family(self, tmp_path, capsys):
        assert run(["generate", "bogus", tmp_path / "x.json"]) == 2
        assert "unknown family" in capsys.readouterr().err


class TestSolve:
    @pytest.fixture()
    def angle_file(self, tmp_path):
        out = tmp_path / "i.json"
        run(["generate", "clustered", out, "--seed", "2",
             "--params", '{"n": 15, "k": 2}'])
        return out

    @pytest.fixture()
    def sector_file(self, tmp_path):
        out = tmp_path / "s.json"
        run(["generate", "towns", out, "--seed", "2", "--params", '{"n": 25}'])
        return out

    @pytest.mark.parametrize(
        "algo", ["greedy", "greedy+ls", "adaptive", "dp-disjoint", "shifting", "lp-round"]
    )
    def test_angle_algorithms(self, angle_file, algo, capsys):
        assert run(["solve", angle_file, "--algorithm", algo]) == 0
        out = capsys.readouterr().out
        assert "ratio vs bound" in out

    def test_exact_small(self, tmp_path, capsys):
        inst = tmp_path / "small.json"
        run(["generate", "uniform", inst, "--params", '{"n": 7, "k": 2}'])
        assert run(["solve", inst, "--algorithm", "exact"]) == 0

    def test_fptas_oracle(self, angle_file):
        assert run(["solve", angle_file, "--algorithm", "greedy", "--eps", "0.3"]) == 0

    @pytest.mark.parametrize("algo", ["greedy", "independent"])
    def test_sector_algorithms(self, sector_file, algo, capsys):
        assert run(["solve", sector_file, "--algorithm", algo]) == 0
        assert "value" in capsys.readouterr().out

    def test_solution_output(self, angle_file, tmp_path, capsys):
        sol_path = tmp_path / "sol.json"
        assert run(["solve", angle_file, "--output", sol_path]) == 0
        sol = solution_from_dict(json.loads(sol_path.read_text()))
        inst = load_instance(angle_file)
        sol.verify(inst)


class TestCompareAndFamilies:
    def test_compare_angle(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        run(["generate", "uniform", inst, "--params", '{"n": 10, "k": 2}'])
        assert run(["compare", inst]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "exact" in out

    def test_compare_sector(self, tmp_path, capsys):
        inst = tmp_path / "s.json"
        run(["generate", "grid", inst, "--params", '{"n": 20, "grid": 1}'])
        assert run(["compare", inst]) == 0
        assert "independent" in capsys.readouterr().out

    def test_families(self, capsys):
        assert run(["families"]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "grid" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCoverOnlineStats:
    @pytest.fixture()
    def angle_file(self, tmp_path):
        out = tmp_path / "i.json"
        run(["generate", "clustered", out, "--seed", "5",
             "--params", '{"n": 18, "k": 2}'])
        return out

    @pytest.fixture()
    def sector_file(self, tmp_path):
        out = tmp_path / "s.json"
        run(["generate", "disk", out, "--params", '{"n": 10}'])
        return out

    def test_cover(self, angle_file, capsys):
        assert run(["cover", angle_file]) == 0
        out = capsys.readouterr().out
        assert "antennas used" in out and "lower bound" in out

    def test_cover_fptas_oracle(self, angle_file):
        assert run(["cover", angle_file, "--eps", "0.2"]) == 0

    def test_cover_rejects_sector(self, sector_file, capsys):
        assert run(["cover", sector_file]) == 2
        assert "angle instances" in capsys.readouterr().err

    def test_online(self, angle_file, capsys):
        assert run(["online", angle_file, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "best_fit" in out and "floor" in out

    def test_online_rejects_sector(self, sector_file):
        assert run(["online", sector_file]) == 2

    def test_stats(self, angle_file, capsys):
        assert run(["stats", angle_file]) == 0
        out = capsys.readouterr().out
        assert "tightness" in out and "customers" in out

    def test_stats_rejects_sector(self, sector_file):
        assert run(["stats", sector_file]) == 2


class TestReport:
    def test_quick_report(self, capsys):
        assert run(["report", "--quick", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out and "E12" in out
        assert "report generated" in out


class TestRenderFlag:
    def test_solve_with_render(self, tmp_path, capsys):
        inst = tmp_path / "i.json"
        run(["generate", "clustered", inst, "--params", '{"n": 15, "k": 2}'])
        assert run(["solve", inst, "--render"]) == 0
        out = capsys.readouterr().out
        assert "antenna 0" in out and "served" in out


class TestBench:
    def test_bench_writes_valid_payload(self, tmp_path, capsys):
        from repro.obs.bench import load_bench

        out = tmp_path / "BENCH_cli.json"
        assert run(["bench", "--families", "uniform", "--n", "15", "--k", "2",
                    "--seeds", "0", "--solvers", "greedy,shifting",
                    "--tag", "cli", "--output", out]) == 0
        table = capsys.readouterr().out
        assert "greedy" in table and "shifting" in table
        payload = load_bench(out)
        assert payload["tag"] == "cli"
        assert {r["solver"] for r in payload["runs"]} == {"greedy", "shifting"}

    def test_bench_check_valid(self, tmp_path, capsys):
        out = tmp_path / "BENCH_c.json"
        run(["bench", "--families", "uniform", "--n", "12", "--k", "2",
             "--solvers", "greedy", "--output", out])
        capsys.readouterr()
        assert run(["bench", "--check", out]) == 0
        assert "valid repro.bench v1" in capsys.readouterr().out

    def test_bench_check_rejects_corrupt(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert run(["bench", "--check", bad]) == 2
        assert "schema" in capsys.readouterr().err

    def test_bench_unknown_family_clean_error(self, tmp_path, capsys):
        assert run(["bench", "--families", "bogus", "--n", "10",
                    "--output", tmp_path / "x.json"]) == 2
        assert "unknown family" in capsys.readouterr().err


class TestTraceFlag:
    def test_solve_trace_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import read_jsonl, trace_enabled

        inst = tmp_path / "i.json"
        run(["generate", "clustered", inst, "--params", '{"n": 15, "k": 2}'])
        trace = tmp_path / "t.jsonl"
        assert run(["solve", inst, "--algorithm", "greedy",
                    "--trace", trace]) == 0
        assert "trace events written" in capsys.readouterr().out
        assert not trace_enabled()  # CLI turned tracing back off
        events = read_jsonl(trace)
        assert any(e["name"] == "solver.greedy_multi" for e in events)
        assert any(e["name"] == "rotation.search" for e in events)


class TestErrorHygiene:
    """Exit-code contract: 0 ok, 2 usage, 3 invalid input, 4 timeout.

    Every failure is one stderr line -- a raw traceback reaching the
    terminal is itself a bug.
    """

    @pytest.fixture()
    def angle_file(self, tmp_path):
        out = tmp_path / "i.json"
        run(["generate", "clustered", out, "--seed", "2",
             "--params", '{"n": 15, "k": 2}'])
        return out

    def test_malformed_json_exit_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json at all")
        assert run(["solve", bad]) == 3
        err = capsys.readouterr().err
        assert "malformed JSON" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_file_exit_3(self, tmp_path, capsys):
        assert run(["solve", tmp_path / "nope.json"]) == 3
        err = capsys.readouterr().err
        assert "Traceback" not in err

    def test_nan_demand_exit_3_names_field(self, tmp_path, angle_file, capsys):
        d = json.loads(angle_file.read_text())
        d["demands"][1] = float("nan")
        bad = tmp_path / "nan.json"
        bad.write_text(json.dumps(d))
        assert run(["solve", bad]) == 3
        err = capsys.readouterr().err
        assert "demands" in err
        assert "Traceback" not in err

    def test_negative_demand_exit_3(self, tmp_path, angle_file, capsys):
        d = json.loads(angle_file.read_text())
        d["demands"][0] = -2.0
        bad = tmp_path / "neg.json"
        bad.write_text(json.dumps(d))
        assert run(["solve", bad]) == 3
        assert "demands" in capsys.readouterr().err

    def test_bad_antenna_rho_exit_3(self, tmp_path, angle_file, capsys):
        d = json.loads(angle_file.read_text())
        d["antennas"][0]["rho"] = 100.0  # outside (0, 2*pi]
        bad = tmp_path / "rho.json"
        bad.write_text(json.dumps(d))
        assert run(["solve", bad]) == 3
        assert "antennas[0]" in capsys.readouterr().err

    def test_timeout_exit_4(self, angle_file, capsys):
        assert run(["solve", angle_file, "--algorithm", "greedy",
                    "--timeout", "0"]) == 4
        err = capsys.readouterr().err
        assert "deadline expired" in err
        assert "--fallback" in err  # points at the degraded-answer escape hatch
        assert "Traceback" not in err

    def test_fallback_answers_under_zero_timeout(self, angle_file, capsys):
        # Same zero deadline, but --fallback degrades instead of failing.
        assert run(["solve", angle_file, "--fallback", "--timeout", "0"]) == 0
        out = capsys.readouterr().out
        assert "fallback-chain" in out
        assert "stage" in out and "degraded" in out

    def test_fallback_happy_path(self, angle_file, capsys):
        assert run(["solve", angle_file, "--fallback"]) == 0
        out = capsys.readouterr().out
        assert "fallback-chain" in out
        assert "exact" in out

    def test_fallback_sector_runs_chain(self, tmp_path, capsys):
        # Sector chains are registry-driven now: --fallback degrades
        # gracefully on 2-D city instances too instead of erroring out.
        inst = tmp_path / "s.json"
        run(["generate", "towns", inst, "--params", '{"n": 10}'])
        assert run(["solve", inst, "--fallback"]) == 0
        out = capsys.readouterr().out
        assert "fallback-chain" in out
        assert "stage" in out

    def test_bench_timeout_bounds_exact_solver(self, tmp_path, capsys):
        from repro.obs.bench import load_bench

        out = tmp_path / "BENCH_t.json"
        assert run(["bench", "--families", "uniform", "--n", "12", "--k", "2",
                    "--seeds", "0", "--solvers", "greedy,exact",
                    "--timeout", "1.0", "--output", out]) == 0
        payload = load_bench(out)
        assert payload["config"]["timeout_s"] == 1.0
        assert "exact" in {r["solver"] for r in payload["runs"]}
