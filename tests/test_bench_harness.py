"""Tests for the bench harness (repro.obs.bench) and its frozen schema."""

import copy
import json

import pytest

from repro.obs.bench import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    load_bench,
    run_bench,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def payload():
    """One small real bench run, shared across the module (it's the slow part)."""
    return run_bench(
        families=("uniform", "disk"), n=20, k=2, seeds=(0, 1), tag="test"
    )


class TestRunBench:
    def test_header(self, payload):
        assert payload["schema"] == SCHEMA_NAME
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["tag"] == "test"
        assert payload["config"]["families"] == ["uniform", "disk"]
        assert payload["config"]["oracle"]  # resolved oracle name recorded

    def test_runs_cover_both_kinds(self, payload):
        kinds = {r["kind"] for r in payload["runs"]}
        assert kinds == {"angle", "sector"}
        # default angle suite x 2 seeds + default sector suite x 2 seeds
        assert len(payload["runs"]) == (4 + 2) * 2

    def test_ratios_certified(self, payload):
        for run in payload["runs"]:
            assert 0.0 <= run["ratio_vs_bound"] <= 1.0 + 1e-6
            assert run["value"] <= run["upper_bound"] * (1 + 1e-6) + 1e-9

    def test_oracle_pressure_recorded(self, payload):
        angle_runs = [r for r in payload["runs"] if r["kind"] == "angle"]
        assert all(r["oracle_calls"] > 0 for r in angle_runs)
        # Only the rotation-search solvers enumerate candidate windows.
        rotation_runs = [r for r in angle_runs if r["solver"] in ("greedy", "adaptive")]
        assert rotation_runs
        assert all(r["candidate_windows"] > 0 for r in rotation_runs)
        assert all(r["phases"].get("rotation", 0.0) > 0.0 for r in rotation_runs)

    def test_summary_aggregates(self, payload):
        summary = payload["summary"]
        assert set(summary) == {r["solver"] for r in payload["runs"]}
        for name, s in summary.items():
            mine = [r for r in payload["runs"] if r["solver"] == name]
            assert s["runs"] == len(mine)
            assert s["peak_oracle_calls"] == max(r["oracle_calls"] for r in mine)
            assert s["min_ratio_vs_bound"] == pytest.approx(
                min(r["ratio_vs_bound"] for r in mine)
            )

    def test_solver_subset_and_unknown(self, payload):
        sub = run_bench(families=("uniform",), n=12, k=2, seeds=(0,),
                        solvers=("greedy",), tag="sub")
        assert {r["solver"] for r in sub["runs"]} == {"greedy"}
        with pytest.raises(ValueError, match="unknown solver"):
            run_bench(families=("uniform",), n=12, solvers=("bogus",))

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            run_bench(families=("not-a-family",), n=12)


class TestValidateBench:
    def test_accepts_real_payload(self, payload):
        assert validate_bench(payload) is payload

    def test_round_trip(self, payload, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench(payload, str(path))
        loaded = load_bench(str(path))
        assert loaded == json.loads(json.dumps(payload))  # JSON-stable

    @pytest.mark.parametrize(
        "mutate, msg",
        [
            (lambda p: p.__setitem__("schema", "other"), "schema"),
            (lambda p: p.__setitem__("schema_version", 99), "schema_version"),
            (lambda p: p.__setitem__("tag", ""), "tag"),
            (lambda p: p.__setitem__("runs", []), "runs"),
            (lambda p: p["runs"][0].pop("wall_time_s"), "wall_time_s"),
            (lambda p: p["runs"][0].__setitem__("wall_time_s", -1.0), "negative"),
            (lambda p: p["runs"][0].__setitem__("kind", "cube"), "kind"),
            (lambda p: p["runs"][0].__setitem__("oracle_calls", 1.5), "oracle_calls"),
            (lambda p: p["runs"][0].__setitem__("ratio_vs_bound", 2.0), "ratio_vs_bound"),
            (lambda p: p["runs"][0].__setitem__(
                "value", p["runs"][0]["upper_bound"] * 2 + 1), "upper bound"),
            (lambda p: p["summary"].__setitem__("extra-solver",
                                                next(iter(p["summary"].values()))),
             "summary solvers"),
            (lambda p: p["runs"][0]["phases"].__setitem__("rotation", -0.5), "phases"),
        ],
    )
    def test_rejects_broken_payloads(self, payload, mutate, msg):
        broken = copy.deepcopy(payload)
        mutate(broken)
        with pytest.raises(ValueError, match=msg):
            validate_bench(broken)

    def test_write_refuses_invalid(self, payload, tmp_path):
        broken = copy.deepcopy(payload)
        broken["schema"] = "nope"
        with pytest.raises(ValueError):
            write_bench(broken, str(tmp_path / "x.json"))
        assert not (tmp_path / "x.json").exists()


class TestCommittedBaseline:
    def test_bench_pr1_json_is_valid(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        baseline = root / "BENCH_pr1.json"
        assert baseline.exists(), "committed bench baseline missing"
        payload = load_bench(str(baseline))
        assert payload["tag"] == "pr1"
