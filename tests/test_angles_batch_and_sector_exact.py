"""Tests for batch window membership and the single-station exact solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI, angles_in_window, angles_in_windows
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import SectorInstance, Station
from repro.model import generators as gen
from repro.packing.flow import covered_matrix
from repro.packing.sectors import (
    solve_exact_sector_single,
    solve_sector_greedy,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


class TestAnglesInWindows:
    @settings(max_examples=150)
    @given(
        st.lists(st.floats(min_value=0, max_value=TWO_PI - 1e-9), max_size=12),
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=TWO_PI - 1e-9),
                st.floats(min_value=0.0, max_value=TWO_PI),
            ),
            max_size=5,
        ),
    )
    def test_matches_scalar_predicate(self, thetas, windows):
        thetas = np.array(thetas)
        starts = np.array([s for s, _ in windows])
        widths = np.array([w for _, w in windows])
        got = angles_in_windows(thetas, starts, widths)
        assert got.shape == (thetas.size, starts.size)
        for j, (s, w) in enumerate(windows):
            expected = angles_in_window(thetas, s, w)
            assert (got[:, j] == expected).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            angles_in_windows(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_full_circle_column(self):
        got = angles_in_windows(
            np.array([0.0, 3.0]), np.array([1.0]), np.array([TWO_PI])
        )
        assert got.all()

    def test_covered_matrix_uses_batch_path(self):
        inst = gen.uniform_angles(n=25, k=3, seed=0)
        ori = np.array([0.0, 2.0, 4.0])
        m = covered_matrix(inst, ori)
        from repro.geometry.arcs import Arc

        for j in range(3):
            arc = Arc(float(ori[j]), inst.antennas[j].rho)
            assert (m[:, j] == arc.contains_angles(inst.thetas)).all()


class TestExactSectorSingle:
    def make(self, n=7, seed=0, radius=5.0, k=2):
        rng = np.random.default_rng(seed)
        r = radius * 1.2 * np.sqrt(rng.uniform(0, 1, n))
        t = rng.uniform(0, TWO_PI, n)
        positions = np.stack([r * np.cos(t), r * np.sin(t)], axis=1)
        demands = rng.uniform(0.3, 1.5, n)
        st_ = Station(
            position=(0.0, 0.0),
            antennas=tuple(
                AntennaSpec(rho=1.5, capacity=0.4 * demands.sum(), radius=radius)
                for _ in range(k)
            ),
        )
        return SectorInstance(positions=positions, demands=demands, stations=(st_,))

    @pytest.mark.parametrize("seed", range(5))
    def test_dominates_greedy(self, seed):
        inst = self.make(seed=seed)
        opt = solve_exact_sector_single(inst)
        opt.verify(inst)
        greedy = solve_sector_greedy(inst, EXACT)
        assert opt.value(inst) >= greedy.value(inst) - 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_certifies_greedy_half(self, seed):
        inst = self.make(seed=seed)
        opt = solve_exact_sector_single(inst).value(inst)
        greedy = solve_sector_greedy(inst, EXACT).value(inst)
        assert greedy >= 0.5 * opt - 1e-9

    def test_out_of_radius_never_served(self):
        inst = self.make(seed=1)
        sol = solve_exact_sector_single(inst)
        _, rs = inst.station_polar(0)
        served = sol.assignment >= 0
        assert (rs[served] <= 5.0 * (1 + 1e-9)).all()

    def test_disjoint_variant(self):
        inst = self.make(seed=2)
        sol = solve_exact_sector_single(inst, require_disjoint=True)
        sol.verify(inst)
        free = solve_exact_sector_single(inst)
        assert sol.value(inst) <= free.value(inst) + 1e-9

    def test_rejects_multi_station(self):
        inst = gen.grid_city(n=10, grid=2, seed=0)
        with pytest.raises(ValueError):
            solve_exact_sector_single(inst)

    def test_rejects_mixed_radii(self):
        inst = gen.macro_micro(n=10, seed=0)
        with pytest.raises(ValueError):
            solve_exact_sector_single(inst)


class TestExactSectorMultiStation:
    def make_two_stations(self, seed, n=8):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(-6, 6, size=(n, 2))
        demands = rng.uniform(0.3, 1.2, n)
        st1 = Station((-3.0, 0.0), (AntennaSpec(rho=2.0, capacity=2.0, radius=5.0),))
        st2 = Station((3.0, 0.0), (AntennaSpec(rho=2.0, capacity=2.0, radius=5.0),))
        return SectorInstance(positions=positions, demands=demands, stations=(st1, st2))

    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_single_station_reduction(self, seed):
        from repro.packing.sectors import solve_exact_sector

        inst = TestExactSectorSingle().make(seed=seed)
        a = solve_exact_sector(inst)
        a.verify(inst)
        b = solve_exact_sector_single(inst)
        assert a.value(inst) == pytest.approx(b.value(inst), abs=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_certifies_greedy_on_two_stations(self, seed):
        from repro.packing.sectors import solve_exact_sector

        inst = self.make_two_stations(seed)
        opt = solve_exact_sector(inst)
        opt.verify(inst)
        greedy = solve_sector_greedy(inst, EXACT)
        assert greedy.value(inst) <= opt.value(inst) + 1e-9
        assert greedy.value(inst) >= 0.5 * opt.value(inst) - 1e-9

    def test_tuple_budget(self):
        from repro.packing.sectors import solve_exact_sector

        inst = gen.grid_city(n=60, grid=2, seed=0)
        with pytest.raises(RuntimeError):
            solve_exact_sector(inst, max_tuples=10)

    def test_empty_instance(self):
        from repro.packing.sectors import solve_exact_sector
        from repro.model.solution import SectorSolution

        st_ = Station((0, 0), (AntennaSpec(rho=1.0, capacity=1.0, radius=1.0),))
        inst = SectorInstance(
            positions=np.zeros((0, 2)), demands=np.zeros(0), stations=(st_,)
        )
        sol = solve_exact_sector(inst)
        assert isinstance(sol, SectorSolution)
        assert sol.value(inst) == 0.0
