"""Tests for exact solvers, local search, shifting, and fixed assignment."""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model import generators as gen
from repro.packing.assignment import greedy_assignment_fixed
from repro.packing.exact import (
    solve_exact_angle,
    solve_exact_fixed_orientations,
)
from repro.packing.local_search import improve_solution
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.shifting import solve_shifting
from tests.helpers import brute_force_fixed_assignment

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def small_instance(seed, n=7, k=2):
    rng = np.random.default_rng(seed)
    rho = float(rng.uniform(0.5, 2.5))
    demands = rng.uniform(0.3, 2.0, n)
    cap = 0.4 * demands.sum()
    return AngleInstance(
        thetas=rng.uniform(0, TWO_PI, n),
        demands=demands,
        antennas=tuple(AntennaSpec(rho=rho, capacity=cap) for _ in range(k)),
    )


class TestExactFixedOrientations:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        inst = small_instance(seed, n=6)
        rng = np.random.default_rng(seed)
        ori = rng.uniform(0, TWO_PI, inst.k)
        fast = solve_exact_fixed_orientations(inst, ori)
        fast.verify(inst)
        ref = brute_force_fixed_assignment(inst, ori)
        assert fast.value(inst) == pytest.approx(ref, abs=1e-9)

    def test_node_budget(self):
        inst = gen.uniform_angles(n=25, k=3, rho=TWO_PI, seed=0)
        with pytest.raises(RuntimeError):
            solve_exact_fixed_orientations(inst, np.zeros(3), max_nodes=10)

    def test_disabled_antennas(self):
        inst = small_instance(1)
        ori = np.zeros(inst.k)
        all_on = solve_exact_fixed_orientations(inst, ori)
        one_off = solve_exact_fixed_orientations(inst, ori, disabled=[1])
        assert (one_off.assignment != 1).all()
        assert one_off.value(inst) <= all_on.value(inst) + 1e-9

    def test_nobody_coverable(self):
        inst = AngleInstance(
            thetas=np.array([3.0]),
            demands=np.array([1.0]),
            antennas=(AntennaSpec(rho=0.5, capacity=1.0),),
        )
        sol = solve_exact_fixed_orientations(inst, [0.0])
        assert sol.value(inst) == 0.0


class TestExactAngle:
    def test_tuple_budget(self):
        inst = gen.uniform_angles(n=40, k=4, seed=0)
        with pytest.raises(RuntimeError):
            solve_exact_angle(inst, max_tuples=10)

    def test_monotone_in_capacity(self):
        inst = small_instance(0, n=6)
        bigger = inst.with_antennas(
            tuple(a.scaled_capacity(2.0) for a in inst.antennas)
        )
        assert solve_exact_angle(bigger).value(bigger) >= solve_exact_angle(
            inst
        ).value(inst) - 1e-9

    def test_disjoint_leq_general(self):
        for seed in range(5):
            inst = small_instance(seed, n=6)
            dis = solve_exact_angle(inst, require_disjoint=True)
            dis.verify(inst, require_disjoint=True)
            free = solve_exact_angle(inst)
            assert dis.value(inst) <= free.value(inst) + 1e-9

    def test_single_customer(self):
        inst = AngleInstance(
            thetas=np.array([1.0]),
            demands=np.array([1.0]),
            antennas=(AntennaSpec(rho=0.5, capacity=2.0),),
        )
        assert solve_exact_angle(inst).value(inst) == 1.0

    def test_empty(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert solve_exact_angle(inst).value(inst) == 0.0


class TestLocalSearch:
    @pytest.mark.parametrize("seed", range(6))
    def test_never_decreases(self, seed):
        inst = gen.clustered_angles(n=30, k=3, seed=seed)
        base = solve_greedy_multi(inst, GREEDY)
        improved = improve_solution(inst, base, EXACT)
        improved.verify(inst)
        assert improved.value(inst) >= base.value(inst) - 1e-9

    def test_fixes_bad_start(self):
        # all antennas pointed away from the single cluster
        rng = np.random.default_rng(0)
        thetas = rng.uniform(0.0, 0.3, 10)
        inst = AngleInstance(
            thetas=thetas,
            demands=np.ones(10),
            antennas=(AntennaSpec(rho=1.0, capacity=5.0),),
        )
        from repro.model.solution import AngleSolution

        bad = AngleSolution(
            orientations=np.array([3.0]), assignment=np.full(10, -1)
        )
        improved = improve_solution(inst, bad, EXACT)
        assert improved.value(inst) == pytest.approx(5.0)

    def test_fill_pass_uses_slack(self):
        inst = AngleInstance(
            thetas=np.array([0.1, 0.2]),
            demands=np.array([1.0, 1.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=2.0),),
        )
        from repro.model.solution import AngleSolution

        partial = AngleSolution(
            orientations=np.array([0.0]), assignment=np.array([0, -1])
        )
        improved = improve_solution(inst, partial, EXACT, max_rounds=1)
        assert improved.value(inst) == pytest.approx(2.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_idempotent_at_fixed_point(self, seed):
        inst = gen.uniform_angles(n=20, k=2, seed=seed)
        s1 = improve_solution(inst, solve_greedy_multi(inst, EXACT), EXACT)
        s2 = improve_solution(inst, s1, EXACT)
        assert s2.value(inst) == pytest.approx(s1.value(inst), abs=1e-9)


class TestShifting:
    def test_requires_uniform(self):
        inst = gen.mixed_antenna_angles(n=20, seed=0)
        with pytest.raises(ValueError):
            solve_shifting(inst, EXACT)

    def test_requires_positive_t(self):
        inst = gen.uniform_angles(n=10, k=2, seed=0)
        with pytest.raises(ValueError):
            solve_shifting(inst, EXACT, t=0)

    @pytest.mark.parametrize("seed", range(6))
    def test_loss_bound_vs_dp(self, seed):
        inst = small_instance(seed, n=8, k=2)
        rho = inst.antennas[0].rho
        t = 8
        dp = solve_non_overlapping_dp(inst, EXACT, boundary_fill=False).value(inst)
        sh = solve_shifting(inst, EXACT, t=t, boundary_fill=False)
        sh.verify(inst, require_disjoint=True)
        assert sh.value(inst) >= (1 - rho / TWO_PI - 1 / t) * dp - 1e-9
        assert sh.value(inst) <= dp + 1e-9

    def test_more_cuts_never_hurt_much(self):
        inst = gen.clustered_angles(n=30, k=3, seed=1)
        v4 = solve_shifting(inst, EXACT, t=4).value(inst)
        v32 = solve_shifting(inst, EXACT, t=32).value(inst)
        assert v32 >= v4 - 1e-9  # best-of-cuts is monotone when cuts nest... sanity
        # (4 divides 32 so the t=4 cuts are a subset of the t=32 cuts)

    def test_empty(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert solve_shifting(inst, EXACT).value(inst) == 0.0


class TestGreedyAssignmentFixed:
    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_and_half_of_exact(self, seed):
        inst = small_instance(seed)
        rng = np.random.default_rng(seed)
        ori = rng.uniform(0, TWO_PI, inst.k)
        sol = greedy_assignment_fixed(inst, ori, EXACT)
        sol.verify(inst)
        ref = solve_exact_fixed_orientations(inst, ori).value(inst)
        assert sol.value(inst) >= 0.5 * ref - 1e-9

    def test_shape_validation(self):
        inst = small_instance(0)
        with pytest.raises(ValueError):
            greedy_assignment_fixed(inst, [0.0], EXACT)
