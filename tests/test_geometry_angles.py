"""Unit + property tests for repro.geometry.angles."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.angles import (
    TWO_PI,
    angles_in_window,
    angular_distance,
    angular_distances,
    ccw_delta,
    ccw_deltas,
    circular_sorted,
    normalize_angle,
    normalize_angles,
)

finite_angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestNormalizeAngle:
    def test_zero(self):
        assert normalize_angle(0.0) == 0.0

    def test_full_turn_wraps_to_zero(self):
        assert normalize_angle(TWO_PI) == 0.0

    def test_negative(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_many_turns(self):
        assert normalize_angle(5 * TWO_PI + 1.0) == pytest.approx(1.0)

    def test_just_below_two_pi_snaps(self):
        assert normalize_angle(TWO_PI - 1e-15) == 0.0

    @given(finite_angles)
    def test_range_invariant(self, theta):
        out = normalize_angle(theta)
        assert 0.0 <= out < TWO_PI

    @given(finite_angles)
    def test_idempotent(self, theta):
        once = normalize_angle(theta)
        assert normalize_angle(once) == pytest.approx(once, abs=1e-12)

    @given(finite_angles)
    def test_agrees_with_vectorized(self, theta):
        assert normalize_angles([theta])[0] == pytest.approx(
            normalize_angle(theta), abs=1e-12
        )


class TestNormalizeAngles:
    def test_array_shape_preserved(self):
        arr = np.array([[0.0, -1.0], [7.0, 13.0]])
        out = normalize_angles(arr)
        assert out.shape == arr.shape

    def test_empty(self):
        assert normalize_angles([]).shape == (0,)

    def test_values(self):
        out = normalize_angles([-math.pi, 3 * math.pi])
        assert out == pytest.approx([math.pi, math.pi])


class TestCcwDelta:
    def test_same_angle_is_zero(self):
        assert ccw_delta(1.3, 1.3) == 0.0

    def test_quarter_turn(self):
        assert ccw_delta(0.0, math.pi / 2) == pytest.approx(math.pi / 2)

    def test_backwards_goes_long_way(self):
        assert ccw_delta(math.pi / 2, 0.0) == pytest.approx(3 * math.pi / 2)

    @given(finite_angles, finite_angles)
    def test_range(self, a, b):
        assert 0.0 <= ccw_delta(a, b) < TWO_PI

    @given(finite_angles, finite_angles)
    def test_forward_plus_backward_is_full_turn(self, a, b):
        fwd = ccw_delta(a, b)
        bwd = ccw_delta(b, a)
        if fwd != 0.0 and bwd != 0.0:
            assert fwd + bwd == pytest.approx(TWO_PI, abs=1e-9)

    def test_vectorized_matches_scalar(self):
        targets = np.linspace(-10, 10, 37)
        vec = ccw_deltas(0.7, targets)
        for t, v in zip(targets, vec):
            assert v == pytest.approx(ccw_delta(0.7, t), abs=1e-12)


class TestAngularDistance:
    def test_symmetric_near_wrap(self):
        assert angular_distance(0.1, TWO_PI - 0.1) == pytest.approx(0.2)

    @given(finite_angles, finite_angles)
    def test_symmetry(self, a, b):
        assert angular_distance(a, b) == pytest.approx(angular_distance(b, a), abs=1e-9)

    @given(finite_angles, finite_angles)
    def test_range(self, a, b):
        d = angular_distance(a, b)
        assert 0.0 <= d <= math.pi + 1e-12

    @given(finite_angles, finite_angles, finite_angles)
    def test_triangle_inequality(self, a, b, c):
        assert angular_distance(a, c) <= (
            angular_distance(a, b) + angular_distance(b, c) + 1e-9
        )

    def test_vectorized_matches_scalar(self):
        bs = np.linspace(0, TWO_PI, 17, endpoint=False)
        vec = angular_distances(1.0, bs)
        for b, v in zip(bs, vec):
            assert v == pytest.approx(angular_distance(1.0, b), abs=1e-12)


class TestAnglesInWindow:
    def test_simple_window(self):
        thetas = np.array([0.0, 0.5, 1.0, 2.0])
        mask = angles_in_window(thetas, 0.25, 1.0)
        assert mask.tolist() == [False, True, True, False]

    def test_wrap_around_window(self):
        thetas = np.array([0.1, 3.0, TWO_PI - 0.1])
        mask = angles_in_window(thetas, TWO_PI - 0.5, 1.0)
        assert mask.tolist() == [True, False, True]

    def test_closed_endpoints(self):
        thetas = np.array([1.0, 2.0])
        mask = angles_in_window(thetas, 1.0, 1.0)
        assert mask.tolist() == [True, True]

    def test_full_circle_covers_everything(self):
        thetas = np.linspace(0, TWO_PI, 50, endpoint=False)
        assert angles_in_window(thetas, 3.3, TWO_PI).all()

    def test_zero_width_covers_only_start(self):
        thetas = np.array([1.0, 1.0 + 1e-6])
        mask = angles_in_window(thetas, 1.0, 0.0)
        assert mask.tolist() == [True, False]


class TestCircularSorted:
    def test_sorts_normalized(self):
        thetas = np.array([-0.1, 0.2, 6.0])
        order = circular_sorted(thetas)
        sorted_vals = normalize_angles(thetas)[order]
        assert (np.diff(sorted_vals) >= 0).all()
