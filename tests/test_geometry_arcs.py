"""Unit + property tests for repro.geometry.arcs."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.angles import TWO_PI
from repro.geometry.arcs import Arc, arcs_pairwise_disjoint, union_measure

angles = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)
widths = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)


class TestArcBasics:
    def test_normalizes_start(self):
        a = Arc(-math.pi / 2, 1.0)
        assert a.start == pytest.approx(3 * math.pi / 2)

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            Arc(0.0, -0.1)

    def test_rejects_over_full_width(self):
        with pytest.raises(ValueError):
            Arc(0.0, TWO_PI + 0.1)

    def test_end_wraps(self):
        a = Arc(TWO_PI - 0.5, 1.0)
        assert a.end == pytest.approx(0.5)

    def test_full_circle_flag(self):
        assert Arc(1.0, TWO_PI).is_full_circle
        assert not Arc(1.0, TWO_PI - 0.01).is_full_circle


class TestContains:
    def test_interior(self):
        assert Arc(0.0, 1.0).contains(0.5)

    def test_closed_both_ends(self):
        a = Arc(1.0, 1.0)
        assert a.contains(1.0)
        assert a.contains(2.0)

    def test_outside(self):
        assert not Arc(0.0, 1.0).contains(1.5)

    def test_wraparound(self):
        a = Arc(TWO_PI - 0.5, 1.0)
        assert a.contains(0.2)
        assert a.contains(TWO_PI - 0.2)
        assert not a.contains(math.pi)

    @given(angles, widths, angles)
    def test_scalar_matches_vectorized(self, start, width, theta):
        a = Arc(start, width)
        assert a.contains(theta) == bool(a.contains_angles(np.array([theta]))[0])

    @given(angles, widths)
    def test_contains_own_endpoints(self, start, width):
        a = Arc(start, width)
        assert a.contains(a.start)
        assert a.contains(a.end)

    @given(angles, widths, st.floats(min_value=0.0, max_value=1.0))
    def test_contains_all_interior_points(self, start, width, frac):
        a = Arc(start, width)
        assert a.contains(a.start + frac * a.width)


class TestContainsArc:
    def test_sub_arc(self):
        assert Arc(0.0, 2.0).contains_arc(Arc(0.5, 1.0))

    def test_not_contained_when_longer(self):
        assert not Arc(0.0, 1.0).contains_arc(Arc(0.5, 1.0))

    def test_full_circle_contains_everything(self):
        assert Arc(0.0, TWO_PI).contains_arc(Arc(3.0, 2.0))

    @given(angles, widths, angles, widths)
    def test_containment_implies_point_containment(self, s1, w1, s2, w2):
        a, b = Arc(s1, w1), Arc(s2, w2)
        if a.contains_arc(b):
            for f in (0.0, 0.3, 0.7, 1.0):
                assert a.contains(b.start + f * b.width)


class TestIntersects:
    def test_disjoint(self):
        assert not Arc(0.0, 1.0).intersects(Arc(2.0, 1.0))

    def test_touching_endpoints_intersect(self):
        assert Arc(0.0, 1.0).intersects(Arc(1.0, 1.0))

    def test_touching_endpoints_do_not_overlap_interior(self):
        assert not Arc(0.0, 1.0).overlaps_interior(Arc(1.0, 1.0))

    def test_proper_overlap(self):
        assert Arc(0.0, 1.0).overlaps_interior(Arc(0.5, 1.0))

    def test_wraparound_overlap(self):
        assert Arc(TWO_PI - 0.5, 1.0).overlaps_interior(Arc(0.2, 0.5))

    def test_zero_width_never_overlaps_interior(self):
        assert not Arc(0.5, 0.0).overlaps_interior(Arc(0.0, 1.0))

    @given(angles, widths, angles, widths)
    def test_symmetry(self, s1, w1, s2, w2):
        a, b = Arc(s1, w1), Arc(s2, w2)
        assert a.intersects(b) == b.intersects(a)
        assert a.overlaps_interior(b) == b.overlaps_interior(a)

    @given(angles, widths, angles, widths)
    def test_interior_overlap_implies_intersection(self, s1, w1, s2, w2):
        a, b = Arc(s1, w1), Arc(s2, w2)
        if a.overlaps_interior(b):
            assert a.intersects(b)


class TestIntersectionMeasure:
    def test_disjoint_is_zero(self):
        assert Arc(0.0, 1.0).intersection_measure(Arc(2.0, 1.0)) == 0.0

    def test_nested(self):
        assert Arc(0.0, 2.0).intersection_measure(Arc(0.5, 1.0)) == pytest.approx(1.0)

    def test_partial(self):
        assert Arc(0.0, 1.0).intersection_measure(Arc(0.5, 1.0)) == pytest.approx(0.5)

    def test_two_component_intersection(self):
        # Two wide arcs whose union is the whole circle overlap at both ends.
        a = Arc(0.0, 4.0)
        b = Arc(3.5, 3.5)
        # components: [3.5, 4.0] (len .5) and [0, 3.5+3.5-2*pi] wrap part
        expected = 0.5 + (7.0 - TWO_PI)
        assert a.intersection_measure(b) == pytest.approx(expected, abs=1e-9)

    @given(angles, widths, angles, widths)
    def test_bounded_by_min_width(self, s1, w1, s2, w2):
        a, b = Arc(s1, w1), Arc(s2, w2)
        m = a.intersection_measure(b)
        assert -1e-9 <= m <= min(w1, w2) + 1e-9

    @given(angles, widths, angles, widths)
    def test_symmetric(self, s1, w1, s2, w2):
        a, b = Arc(s1, w1), Arc(s2, w2)
        assert a.intersection_measure(b) == pytest.approx(
            b.intersection_measure(a), abs=1e-9
        )

    @given(angles, widths)
    def test_self_intersection_is_width(self, s, w):
        a = Arc(s, w)
        assert a.intersection_measure(a) == pytest.approx(w, abs=1e-9)


class TestRotatedAndSample:
    def test_rotation_preserves_width(self):
        a = Arc(1.0, 2.0).rotated(0.7)
        assert a.width == 2.0
        assert a.start == pytest.approx(1.7)

    @given(angles, widths, st.integers(min_value=1, max_value=20))
    def test_samples_are_contained(self, s, w, k):
        a = Arc(s, w)
        for t in a.sample_angles(k):
            assert a.contains(float(t))

    def test_sample_zero(self):
        assert Arc(0.0, 1.0).sample_angles(0).size == 0


class TestPairwiseDisjoint:
    def test_empty_and_single(self):
        assert arcs_pairwise_disjoint([])
        assert arcs_pairwise_disjoint([Arc(0.0, 3.0)])

    def test_disjoint_family(self):
        arcs = [Arc(0.0, 1.0), Arc(1.0, 1.0), Arc(2.5, 1.0)]
        assert arcs_pairwise_disjoint(arcs)

    def test_overlapping_family(self):
        arcs = [Arc(0.0, 1.0), Arc(0.9, 1.0)]
        assert not arcs_pairwise_disjoint(arcs)


class TestUnionMeasure:
    def test_empty(self):
        assert union_measure([]) == 0.0

    def test_single(self):
        assert union_measure([Arc(1.0, 2.0)]) == pytest.approx(2.0)

    def test_disjoint_adds(self):
        assert union_measure([Arc(0.0, 1.0), Arc(2.0, 1.0)]) == pytest.approx(2.0)

    def test_overlapping_merges(self):
        assert union_measure([Arc(0.0, 1.0), Arc(0.5, 1.0)]) == pytest.approx(1.5)

    def test_wrap_merge(self):
        assert union_measure([Arc(TWO_PI - 0.5, 1.0), Arc(0.4, 0.5)]) == pytest.approx(
            1.4, abs=1e-9
        )

    def test_full_circle_caps(self):
        arcs = [Arc(0.0, TWO_PI), Arc(1.0, 1.0)]
        assert union_measure(arcs) == pytest.approx(TWO_PI)

    @given(st.lists(st.tuples(angles, widths), max_size=6))
    def test_bounds(self, parts):
        arcs = [Arc(s, w) for s, w in parts]
        m = union_measure(arcs)
        assert -1e-9 <= m <= TWO_PI + 1e-9
        if arcs:
            assert m >= max(a.width for a in arcs) - 1e-9
            assert m <= sum(a.width for a in arcs) + 1e-9
