"""Integration tests: multi-module pipelines end to end."""

import json

import numpy as np
import pytest

from repro import (
    AngleInstance,
    AntennaSpec,
    Customer,
    Station,
    get_solver,
    improve_solution,
    load_instance,
    save_instance,
    solve_exact_angle,
    solve_greedy_multi,
    solve_sector_greedy,
)
from repro.analysis.experiments import SolverSpec, ratio_study, report
from repro.analysis.stats import instance_stats
from repro.analysis.viz import render_loads, render_solution
from repro.model import generators as gen
from repro.model.serialization import (
    load_solution,
    save_solution,
)
from repro.online import OnlineAdmission, replay_offline_reference
from repro.packing.covering import cover_instance, verify_cover
from repro.packing.sectors import improve_sector_solution, solve_sector_splittable
from repro.parallel import parallel_map

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


class TestFilePipeline:
    def test_generate_save_load_solve_save_load_verify(self, tmp_path):
        inst = gen.clustered_angles(n=25, k=2, seed=8)
        ipath = tmp_path / "inst.json"
        save_instance(inst, ipath)
        loaded = load_instance(ipath)
        assert loaded == inst

        sol = improve_solution(loaded, solve_greedy_multi(loaded, GREEDY), GREEDY)
        spath = tmp_path / "sol.json"
        save_solution(sol, spath)
        sol2 = load_solution(spath)
        sol2.verify(loaded)
        assert sol2.value(loaded) == pytest.approx(sol.value(loaded))

    def test_sector_pipeline(self, tmp_path):
        inst = gen.clustered_towns(n=50, seed=8)
        p = tmp_path / "city.json"
        save_instance(inst, p)
        city = load_instance(p)
        sol = solve_sector_greedy(city, GREEDY)
        better = improve_sector_solution(city, sol, GREEDY)
        better.verify(city)
        _, ub = solve_sector_splittable(city, better.orientations)
        assert better.value(city) <= ub + 1e-6


class TestCustomerApiPipeline:
    def test_build_from_customers_and_solve(self):
        customers = [
            Customer(demand=1.0, theta=0.1, label="a"),
            Customer(demand=2.0, theta=0.2, label="b"),
            Customer(demand=1.5, theta=3.0, label="c"),
        ]
        inst = AngleInstance.from_customers(
            customers, [AntennaSpec(rho=1.0, capacity=3.0)]
        )
        sol = solve_exact_angle(inst)
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(3.0)

    def test_planar_customers_to_sector_solve(self):
        st = Station(
            position=(0.0, 0.0),
            antennas=(AntennaSpec(rho=2.0, capacity=5.0, radius=3.0),),
        )
        customers = [
            Customer(demand=1.0, position=(1.0, 0.5)),
            Customer(demand=2.0, position=(0.5, 1.0)),
            Customer(demand=9.0, position=(10.0, 0.0)),  # unreachable
        ]
        from repro.model.instance import SectorInstance

        inst = SectorInstance.from_customers(customers, [st])
        sol = solve_sector_greedy(inst, EXACT)
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(3.0)
        assert sol.assignment[2] == -1


class TestPlanThenOperate:
    """Offline planning -> online operation -> dual covering audit."""

    def test_full_lifecycle(self):
        forecast = gen.clustered_angles(n=40, k=3, seed=10)
        plan = solve_greedy_multi(forecast, GREEDY, adaptive=True)

        rng = np.random.default_rng(11)
        thetas = rng.uniform(0, 2 * np.pi, 50)
        demands = rng.uniform(0.2, 0.8, 50)
        sim = OnlineAdmission(forecast.antennas, plan.orientations, policy="best_fit")
        online = sim.run(thetas, demands)
        offline = replay_offline_reference(
            forecast.antennas, plan.orientations, thetas, demands
        )
        assert 0 < online <= offline + 1e-6

        # audit: how many antennas would full coverage have needed?
        cover = cover_instance(forecast, GREEDY)
        verify_cover(forecast.thetas, forecast.demands, forecast.antennas[0], cover)
        assert cover.antennas_used >= cover.lower_bound


class TestHarnessIntegration:
    def test_ratio_study_with_report_and_stats(self):
        instances = {
            "uniform": [gen.uniform_angles(n=8, k=2, seed=s) for s in range(2)],
            "hotspot": [gen.hotspot_angles(n=8, k=2, seed=s) for s in range(2)],
        }
        solvers = [
            SolverSpec("greedy", lambda i: solve_greedy_multi(i, EXACT).value(i), 0.5),
            SolverSpec("exact", lambda i: solve_exact_angle(i).value(i), 1.0),
        ]
        records = ratio_study(
            instances, solvers, lambda i: solve_exact_angle(i).value(i)
        )
        text = report(records)
        assert "greedy" in text
        for fam, insts in instances.items():
            for inst in insts:
                s = instance_stats(inst)
                assert s.n == 8

    def test_parallel_fanout_of_solves(self):
        values = parallel_map(_solve_one_seed, list(range(8)), workers=2)
        assert values == [_solve_one_seed(s) for s in range(8)]


def _solve_one_seed(seed: int) -> float:
    inst = gen.uniform_angles(n=30, k=2, seed=seed)
    return solve_greedy_multi(inst, GREEDY).value(inst)


class TestVizIntegration:
    def test_render_solution_of_real_solver(self):
        inst = gen.hotspot_angles(n=30, k=2, seed=5)
        sol = solve_greedy_multi(inst, GREEDY)
        art = render_solution(inst, sol)
        bars = render_loads(inst, sol)
        assert len(art.splitlines()) == inst.k + 1
        assert len(bars.splitlines()) == inst.k
