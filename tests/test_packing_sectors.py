"""Tests for the 2-D sector pipeline (repro.packing.sectors)."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import SectorInstance, Station
from repro.model import generators as gen
from repro.packing.sectors import (
    sector_covered_matrix,
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def one_station(radius=5.0, k=2, rho=math.pi / 2, capacity=4.0):
    return Station(
        position=(0.0, 0.0),
        antennas=tuple(
            AntennaSpec(rho=rho, capacity=capacity, radius=radius) for _ in range(k)
        ),
    )


class TestCoveredMatrix:
    def test_angle_and_radius(self):
        st = one_station(radius=2.0, k=1, rho=math.pi / 2)
        inst = SectorInstance(
            positions=np.array([[1.0, 1.0], [-1.0, 1.0], [3.0, 0.0]]),
            demands=np.ones(3),
            stations=(st,),
        )
        m = sector_covered_matrix(inst, [0.0])
        assert m[:, 0].tolist() == [True, False, False]

    def test_shape_validation(self):
        inst = gen.uniform_disk(n=5, seed=0)
        with pytest.raises(ValueError):
            sector_covered_matrix(inst, [0.0, 0.0, 0.0, 0.0])


class TestSectorGreedy:
    @pytest.mark.parametrize("family,kwargs", [
        ("disk", {}),
        ("towns", {}),
        ("grid", {"grid": 1}),
    ])
    def test_families_feasible(self, family, kwargs):
        inst = gen.SECTOR_FAMILIES[family](seed=1, **kwargs)
        sol = solve_sector_greedy(inst, GREEDY)
        sol.verify(inst)
        assert sol.value(inst) > 0

    def test_adaptive_vs_plain_both_feasible(self):
        inst = gen.clustered_towns(n=50, seed=2)
        a = solve_sector_greedy(inst, GREEDY, adaptive=True)
        b = solve_sector_greedy(inst, GREEDY, adaptive=False)
        a.verify(inst)
        b.verify(inst)

    def test_out_of_range_customers_unserved(self):
        st = one_station(radius=1.0, k=1, rho=TWO_PI, capacity=100.0)
        inst = SectorInstance(
            positions=np.array([[0.5, 0.0], [10.0, 0.0]]),
            demands=np.array([1.0, 1.0]),
            stations=(st,),
        )
        sol = solve_sector_greedy(inst, EXACT)
        assert sol.assignment[1] == -1
        assert sol.value(inst) == 1.0

    def test_capacity_respected_per_antenna(self):
        st = one_station(radius=5.0, k=1, rho=TWO_PI, capacity=2.5)
        inst = SectorInstance(
            positions=np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]]),
            demands=np.array([1.0, 1.0, 1.0]),
            stations=(st,),
        )
        sol = solve_sector_greedy(inst, EXACT)
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(2.0)

    def test_splittable_certifies_greedy(self):
        inst = gen.grid_city(n=60, grid=2, seed=3)
        sol = solve_sector_greedy(inst, EXACT)
        _, ub = solve_sector_splittable(inst, sol.orientations)
        assert sol.value(inst) <= ub + 1e-6
        # greedy with exact oracle is a 1/2-approx of the optimum *at its own
        # orientations*, which the splittable value upper-bounds
        assert sol.value(inst) >= 0.5 * ub - 1e-6 or sol.value(inst) > 0


class TestSectorIndependent:
    def test_feasible(self):
        inst = gen.clustered_towns(n=60, seed=4)
        sol = solve_sector_independent(inst, GREEDY)
        sol.verify(inst)

    def test_never_beats_greedy_badly(self):
        # independent drops cross-station arbitration; greedy should win or tie
        inst = gen.grid_city(n=80, grid=2, seed=5)
        indep = solve_sector_independent(inst, EXACT).value(inst)
        greedy = solve_sector_greedy(inst, EXACT).value(inst)
        assert greedy >= indep * 0.8 - 1e-9  # greedy can rarely lose a bit

    def test_single_station_matches_multi_greedy_shape(self):
        inst = gen.uniform_disk(n=40, k=2, seed=6)
        sol = solve_sector_independent(inst, EXACT)
        sol.verify(inst)
        assert sol.value(inst) > 0


class TestSectorSplittable:
    def test_profit_demand_flow_path(self):
        inst = gen.uniform_disk(n=30, k=2, seed=7)
        ori = np.zeros(inst.total_antennas)
        frac, val = solve_sector_splittable(inst, ori)
        assert frac.shape == (inst.n, inst.total_antennas)
        assert (frac >= 0).all() and (frac <= 1 + 1e-9).all()
        loads = (inst.demands[:, None] * frac).sum(axis=0)
        caps = [spec.capacity for _, _, spec in inst.antenna_table()]
        assert (loads <= np.asarray(caps) * (1 + 1e-6)).all()

    def test_general_profit_lp_path(self):
        rng = np.random.default_rng(8)
        st = one_station(radius=5.0, k=1, rho=TWO_PI, capacity=3.0)
        inst = SectorInstance(
            positions=rng.uniform(-2, 2, size=(6, 2)),
            demands=rng.uniform(0.5, 1.5, 6),
            profits=rng.uniform(1.0, 5.0, 6),
            stations=(st,),
        )
        frac, val = solve_sector_splittable(inst, np.zeros(1))
        assert val > 0
        assert (inst.demands * frac[:, 0]).sum() <= 3.0 * (1 + 1e-6)

    def test_upper_bounds_integral(self):
        inst = gen.clustered_towns(n=40, seed=9)
        sol = solve_sector_greedy(inst, EXACT)
        _, ub = solve_sector_splittable(inst, sol.orientations)
        assert ub >= sol.value(inst) - 1e-6

    def test_empty_orientation_mismatch(self):
        inst = gen.uniform_disk(n=5, seed=0)
        with pytest.raises(ValueError):
            solve_sector_splittable(inst, np.zeros(99))
