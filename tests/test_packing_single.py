"""Tests for the single-antenna solvers (repro.packing.single)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.packing.single import (
    RotationOutcome,
    best_rotation,
    best_rotation_fractional,
    solve_single_antenna,
    solve_single_antenna_fractional,
)
from tests.helpers import brute_force_single_best

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")
FPTAS = get_solver("fptas", eps=0.2)

tiny = st.builds(
    lambda ts, ds, rho, cf: (
        np.array(ts),
        np.array(ds[: len(ts)] + [1.0] * max(0, len(ts) - len(ds))),
        rho,
        max(cf * sum(ds[: len(ts)] or [1.0]), 0.1),
    ),
    st.lists(st.floats(min_value=0, max_value=TWO_PI - 1e-9), min_size=1, max_size=8),
    st.lists(st.floats(min_value=0.2, max_value=3.0), min_size=1, max_size=8),
    st.floats(min_value=0.05, max_value=TWO_PI),
    st.floats(min_value=0.1, max_value=1.1),
)


class TestBestRotation:
    def test_empty(self):
        out = best_rotation(np.empty(0), np.empty(0), np.empty(0),
                            AntennaSpec(rho=1.0, capacity=1.0), EXACT)
        assert out.value == 0.0
        assert out.selected.size == 0

    def test_single_customer(self):
        out = best_rotation(
            np.array([2.0]), np.array([1.0]), np.array([1.0]),
            AntennaSpec(rho=0.5, capacity=1.0), EXACT,
        )
        assert out.value == 1.0
        assert out.alpha == pytest.approx(2.0)

    def test_picks_dense_cluster(self):
        thetas = np.array([0.0, 0.1, 0.2, 3.0])
        d = np.array([1.0, 1.0, 1.0, 2.5])
        out = best_rotation(thetas, d, d, AntennaSpec(rho=0.5, capacity=3.0), EXACT)
        assert out.value == pytest.approx(3.0)
        assert set(out.selected.tolist()) == {0, 1, 2}

    def test_capacity_forces_knapsack(self):
        thetas = np.array([0.0, 0.1, 0.2])
        d = np.array([2.0, 2.0, 3.0])
        out = best_rotation(thetas, d, d, AntennaSpec(rho=1.0, capacity=4.0), EXACT)
        assert out.value == pytest.approx(4.0)

    @settings(max_examples=80, deadline=None)
    @given(tiny)
    def test_exact_oracle_matches_brute_force(self, inst):
        thetas, demands, rho, cap = inst
        spec = AntennaSpec(rho=rho, capacity=cap)
        out = best_rotation(thetas, demands, demands, spec, EXACT)
        ref = brute_force_single_best(thetas, demands, demands, rho, cap)
        assert out.value == pytest.approx(ref, abs=1e-9)

    @settings(max_examples=80, deadline=None)
    @given(tiny)
    def test_greedy_oracle_half_guarantee(self, inst):
        thetas, demands, rho, cap = inst
        spec = AntennaSpec(rho=rho, capacity=cap)
        out = best_rotation(thetas, demands, demands, spec, GREEDY)
        ref = brute_force_single_best(thetas, demands, demands, rho, cap)
        assert out.value >= 0.5 * ref - 1e-9
        assert out.value <= ref + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(tiny)
    def test_fptas_guarantee(self, inst):
        thetas, demands, rho, cap = inst
        spec = AntennaSpec(rho=rho, capacity=cap)
        out = best_rotation(thetas, demands, demands, spec, FPTAS)
        ref = brute_force_single_best(thetas, demands, demands, rho, cap)
        assert out.value >= 0.8 * ref - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(tiny)
    def test_selection_feasible(self, inst):
        thetas, demands, rho, cap = inst
        spec = AntennaSpec(rho=rho, capacity=cap)
        out = best_rotation(thetas, demands, demands, spec, EXACT)
        # capacity respected
        assert demands[out.selected].sum() <= cap * (1 + 1e-9)
        # coverage respected
        from repro.geometry.arcs import Arc

        arc = Arc(out.alpha, rho)
        for i in out.selected:
            assert arc.contains(float(thetas[i]))

    def test_full_circle_reduces_to_knapsack(self):
        thetas = np.linspace(0, TWO_PI, 6, endpoint=False)
        d = np.array([3.0, 5.0, 7.0, 2.0, 4.0, 6.0])
        out = best_rotation(thetas, d, d, AntennaSpec(rho=TWO_PI, capacity=10.0), EXACT)
        assert out.value == pytest.approx(10.0)


class TestBestRotationFractional:
    def test_empty(self):
        alpha, frac, val = best_rotation_fractional(
            np.empty(0), np.empty(0), np.empty(0), AntennaSpec(rho=1.0, capacity=1.0)
        )
        assert val == 0.0

    def test_fills_capacity_when_demand_exceeds(self):
        thetas = np.array([0.0, 0.1])
        d = np.array([3.0, 3.0])
        alpha, frac, val = best_rotation_fractional(
            thetas, d, d, AntennaSpec(rho=1.0, capacity=4.0)
        )
        assert val == pytest.approx(4.0)

    @settings(max_examples=60, deadline=None)
    @given(tiny)
    def test_upper_bounds_integral(self, inst):
        thetas, demands, rho, cap = inst
        spec = AntennaSpec(rho=rho, capacity=cap)
        _, _, frac_val = best_rotation_fractional(thetas, demands, demands, spec)
        ref = brute_force_single_best(thetas, demands, demands, rho, cap)
        assert frac_val >= ref - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(tiny, st.randoms(use_true_random=False))
    def test_general_profits_path(self, inst, rnd):
        thetas, demands, rho, cap = inst
        profits = np.array([rnd.uniform(0.5, 5.0) for _ in demands])
        spec = AntennaSpec(rho=rho, capacity=cap)
        _, frac, val = best_rotation_fractional(thetas, demands, profits, spec)
        assert (frac >= -1e-12).all() and (frac <= 1 + 1e-12).all()
        assert (demands * frac).sum() <= cap * (1 + 1e-9)
        assert val == pytest.approx((profits * frac).sum(), abs=1e-9)
        ref = brute_force_single_best(thetas, demands, profits, rho, cap)
        assert val >= ref - 1e-9


class TestSolveSingleAntenna:
    def make(self, k=1):
        return AngleInstance(
            thetas=np.array([0.0, 0.3, 3.0]),
            demands=np.array([1.0, 2.0, 1.5]),
            antennas=tuple(AntennaSpec(rho=1.0, capacity=3.0) for _ in range(k)),
        )

    def test_requires_k1(self):
        with pytest.raises(ValueError):
            solve_single_antenna(self.make(k=2), EXACT)
        with pytest.raises(ValueError):
            solve_single_antenna_fractional(self.make(k=2))

    def test_returns_verified_solution(self):
        inst = self.make()
        sol = solve_single_antenna(inst, EXACT)
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(3.0)

    def test_fractional_solution_verifies(self):
        inst = self.make()
        sol = solve_single_antenna_fractional(inst)
        sol.verify(inst)
        assert sol.value(inst) >= 3.0 - 1e-9

    def test_rotation_outcome_empty(self):
        out = RotationOutcome.empty()
        assert out.value == 0.0 and out.demand == 0.0
