"""The README's code blocks must actually run (documentation tests)."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 1


def test_readme_covers_the_service_layer():
    """The serving quickstart must exist (and so gets executed below)."""
    blocks = [b for b in python_blocks() if "repro.service" in b]
    assert blocks, "README must carry a repro.service quickstart block"
    assert any("solve_batch" in b and "start_in_thread" in b for b in blocks)


@pytest.mark.parametrize("idx", range(len(python_blocks())))
def test_readme_block_executes(idx, capsys):
    code = python_blocks()[idx]
    namespace: dict = {}
    exec(compile(code, f"README.md#block{idx}", "exec"), namespace)  # noqa: S102
    # The quickstart block prints results; anything it defined must be sane.
    out = capsys.readouterr().out
    assert "Traceback" not in out
