"""The README's code blocks must actually run (documentation tests)."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 1


@pytest.mark.parametrize("idx", range(len(python_blocks())))
def test_readme_block_executes(idx, capsys):
    code = python_blocks()[idx]
    namespace: dict = {}
    exec(compile(code, f"README.md#block{idx}", "exec"), namespace)  # noqa: S102
    # The quickstart block prints results; anything it defined must be sane.
    out = capsys.readouterr().out
    assert "Traceback" not in out
