"""Tests for the observability layer (repro.obs): tracing + metrics."""

import json
import threading

import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.obs import (
    Counter,
    Gauge,
    Registry,
    Timer,
    disable_tracing,
    drain_events,
    enable_tracing,
    event,
    get_registry,
    read_jsonl,
    span,
    trace_enabled,
    tracing,
)
from repro.obs.trace import NULL_SPAN
from repro.packing.multi import solve_greedy_multi


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled and drained."""
    disable_tracing()
    drain_events()
    yield
    disable_tracing()
    drain_events()


class TestMetrics:
    def test_counter_inc(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c._snapshot() == {"type": "counter", "value": 6}

    def test_gauge_set(self):
        g = Gauge()
        g.set(2.5)
        assert g._snapshot() == {"type": "gauge", "value": 2.5}

    def test_timer_observe_and_context(self):
        t = Timer()
        t.observe(0.25)
        with t.time():
            pass
        snap = t._snapshot()
        assert snap["type"] == "timer"
        assert snap["count"] == 2
        assert snap["max_s"] >= 0.25
        assert snap["total_s"] >= 0.25
        assert snap["min_s"] >= 0.0

    def test_registry_get_or_create_same_object(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(TypeError):
            reg.timer("a")  # name already registered as a counter

    def test_registry_snapshot_sorted_and_json_safe(self):
        reg = Registry()
        reg.counter("z.last").inc(3)
        reg.gauge("a.first").set(1.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_registry_reset_zeroes_in_place(self):
        reg = Registry()
        c = reg.counter("c")
        t = reg.timer("t")
        c.inc(7)
        t.observe(0.1)
        reg.reset()
        # The handles survive (critical for module-level cached metrics)...
        assert reg.counter("c") is c
        # ...and carry zeroed state.
        assert c.value == 0
        assert t._snapshot()["count"] == 0
        c.inc()
        assert reg.snapshot()["c"]["value"] == 1

    def test_counter_thread_safety(self):
        c = Counter()

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert c.value == 40_000

    def test_process_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestTracingDisabled:
    def test_span_is_null_singleton(self):
        assert not trace_enabled()
        sp = span("anything", x=1)
        assert sp is NULL_SPAN
        assert span("other") is NULL_SPAN  # no allocation per call

    def test_null_span_is_inert(self):
        with span("outer") as sp:
            sp.set(a=1).set(b=2)
            event("point", v=3)
        assert drain_events() == []


class TestTracingEnabled:
    def test_span_nesting_and_attrs(self):
        enable_tracing()
        with span("outer", job="test") as outer:
            with span("inner") as inner:
                inner.set(found=7)
            outer.set(total=1)
        events = drain_events()
        assert [e["name"] for e in events] == ["inner", "outer"]  # close order
        inner_e, outer_e = events
        assert outer_e["parent_id"] is None
        assert outer_e["depth"] == 0
        assert inner_e["parent_id"] == outer_e["span_id"]
        assert inner_e["depth"] == 1
        assert outer_e["attrs"] == {"job": "test", "total": 1}
        assert inner_e["attrs"] == {"found": 7}
        assert outer_e["duration_s"] >= inner_e["duration_s"] >= 0.0

    def test_error_status_and_stack_unwound(self):
        enable_tracing()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        (e,) = drain_events()
        assert e["status"] == "error"
        # The thread-local stack unwound: a new span is a root again.
        with span("after"):
            pass
        (after,) = drain_events()
        assert after["parent_id"] is None

    def test_point_event(self):
        enable_tracing()
        event("tick", n=3)
        (e,) = drain_events()
        assert e["type"] == "event"
        assert e["name"] == "tick"
        assert e["attrs"] == {"n": 3}

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracing(str(path)):
            with span("a", n=1):
                with span("b"):
                    pass
        assert not trace_enabled()
        events = read_jsonl(str(path))
        assert [e["name"] for e in events] == ["b", "a"]
        # Sink lines are valid JSON objects with the documented fields.
        for e in events:
            for field in ("type", "name", "span_id", "parent_id", "depth",
                          "thread", "ts_unix", "duration_s", "status", "attrs"):
                assert field in e

    def test_buffer_bound_drops_not_grows(self):
        enable_tracing(max_buffer=4)
        for i in range(10):
            event("e", i=i)
        events = drain_events()
        assert len(events) == 4

    def test_tracing_context_restores_disabled(self):
        with tracing():
            assert trace_enabled()
            with span("x"):
                pass
            assert len(drain_events()) == 1
        assert not trace_enabled()


class TestSolverIntegration:
    def test_greedy_multi_emits_oracle_and_rotation_metrics(self):
        inst = gen.clustered_angles(n=40, k=3, seed=0)
        reg = get_registry()
        reg.reset()
        sol = solve_greedy_multi(inst, get_solver("greedy"))
        sol.verify(inst)
        snap = reg.snapshot()
        assert snap["oracle.calls"]["value"] > 0
        assert snap["rotation.candidate_windows"]["value"] > 0
        assert snap["rotation.searches"]["value"] == inst.k
        assert snap["solver.greedy_multi.rounds"]["value"] == inst.k
        # One rotation-phase timing per antenna placed.
        assert snap["phase.rotation"]["count"] >= 2

    def test_greedy_multi_spans_when_traced(self):
        inst = gen.clustered_angles(n=25, k=2, seed=3)
        with tracing():
            solve_greedy_multi(inst, get_solver("greedy"))
            events = drain_events()
        names = [e["name"] for e in events]
        assert names.count("rotation.search") == inst.k
        assert names[-1] == "solver.greedy_multi"  # outermost closes last
        root = events[-1]
        for e in events[:-1]:
            assert e["parent_id"] == root["span_id"]

    def test_tracing_does_not_change_solution(self):
        inst = gen.uniform_angles(n=30, k=2, seed=5)
        oracle = get_solver("greedy")
        base = solve_greedy_multi(inst, oracle).value(inst)
        with tracing():
            traced = solve_greedy_multi(inst, oracle).value(inst)
            drain_events()
        assert traced == base
