"""Tests for the dual covering problem (repro.packing.covering)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model import generators as gen
from repro.packing.covering import (
    CoverResult,
    InfeasibleCoverError,
    cover_instance,
    cover_lower_bound,
    greedy_cover,
    verify_cover,
    _min_arcs_to_touch,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


class TestMinArcsToTouch:
    def test_empty(self):
        assert _min_arcs_to_touch(np.empty(0), 1.0) == 0

    def test_single_point(self):
        assert _min_arcs_to_touch(np.array([1.0]), 0.5) == 1

    def test_cluster_needs_one(self):
        thetas = np.array([1.0, 1.1, 1.2])
        assert _min_arcs_to_touch(thetas, 0.5) == 1

    def test_opposite_points_need_two(self):
        thetas = np.array([0.0, math.pi])
        assert _min_arcs_to_touch(thetas, 1.0) == 2

    def test_full_spread(self):
        thetas = np.linspace(0, TWO_PI, 8, endpoint=False)
        # arcs of width just over one gap touch 2 points each -> 4 arcs
        assert _min_arcs_to_touch(thetas, TWO_PI / 8 + 1e-6) == 4

    @settings(max_examples=50)
    @given(
        st.lists(st.floats(min_value=0, max_value=TWO_PI - 1e-9), min_size=1, max_size=10),
        st.floats(min_value=0.1, max_value=TWO_PI - 1e-6),
    )
    def test_is_feasible_count(self, thetas, rho):
        """The returned count is achievable: arcs starting at uniq angles."""
        count = _min_arcs_to_touch(np.array(thetas), rho)
        assert 1 <= count <= len(set(np.mod(thetas, TWO_PI).tolist()))


class TestLowerBound:
    def test_capacity_bound(self):
        spec = AntennaSpec(rho=TWO_PI, capacity=2.0)
        thetas = np.zeros(4)
        demands = np.ones(4)  # total 4, cap 2 -> >= 2
        assert cover_lower_bound(thetas, demands, spec) == 2

    def test_geometry_bound(self):
        spec = AntennaSpec(rho=1.0, capacity=100.0)
        thetas = np.array([0.0, math.pi])
        demands = np.array([0.1, 0.1])
        assert cover_lower_bound(thetas, demands, spec) == 2

    def test_empty(self):
        spec = AntennaSpec(rho=1.0, capacity=1.0)
        assert cover_lower_bound(np.empty(0), np.empty(0), spec) == 0


class TestGreedyCover:
    def test_empty_instance(self):
        spec = AntennaSpec(rho=1.0, capacity=1.0)
        res = greedy_cover(np.empty(0), np.empty(0), spec, EXACT)
        assert res.antennas_used == 0

    def test_single_cluster_one_antenna(self):
        spec = AntennaSpec(rho=1.0, capacity=10.0)
        thetas = np.array([0.1, 0.2, 0.3])
        demands = np.ones(3)
        res = greedy_cover(thetas, demands, spec, EXACT)
        assert res.antennas_used == 1
        verify_cover(thetas, demands, spec, res)

    def test_infeasible_raises(self):
        spec = AntennaSpec(rho=1.0, capacity=1.0)
        with pytest.raises(InfeasibleCoverError):
            greedy_cover(np.array([0.0]), np.array([2.0]), spec, EXACT)

    def test_capacity_forces_multiple(self):
        spec = AntennaSpec(rho=TWO_PI, capacity=2.0)
        thetas = np.linspace(0, 1, 6)
        demands = np.ones(6)  # total 6, cap 2 -> at least 3
        res = greedy_cover(thetas, demands, spec, EXACT)
        verify_cover(thetas, demands, spec, res)
        assert res.antennas_used >= res.lower_bound == 3
        assert res.antennas_used == 3  # greedy is optimal here

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_covered_and_bounded(self, seed):
        inst = gen.uniform_angles(n=25, k=1, rho=1.2, capacity_fraction=0.2, seed=seed)
        res = cover_instance(inst, GREEDY)
        verify_cover(inst.thetas, inst.demands, inst.antennas[0], res)
        assert res.antennas_used >= res.lower_bound
        # greedy-set-cover style: should stay within a small factor here
        assert res.antennas_used <= 4 * res.lower_bound + 1

    def test_gap_property(self):
        res = CoverResult(
            orientations=np.zeros(3),
            assignment=np.zeros(5, dtype=np.int64),
            antennas_used=3,
            lower_bound=2,
        )
        assert res.gap() == pytest.approx(1.5)

    def test_max_antennas_guard(self):
        spec = AntennaSpec(rho=0.1, capacity=1.0)
        thetas = np.linspace(0, TWO_PI, 10, endpoint=False)
        demands = np.ones(10)
        with pytest.raises(RuntimeError):
            greedy_cover(thetas, demands, spec, EXACT, max_antennas=2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=TWO_PI - 1e-9), min_size=1, max_size=12),
        st.floats(min_value=0.3, max_value=2.0),
    )
    def test_property_full_coverage(self, thetas, rho):
        thetas = np.array(thetas)
        demands = np.ones(thetas.size)
        spec = AntennaSpec(rho=rho, capacity=3.0)
        res = greedy_cover(thetas, demands, spec, EXACT)
        verify_cover(thetas, demands, spec, res)
        assert (res.assignment >= 0).all()


class TestVerifyCover:
    def make_valid(self):
        spec = AntennaSpec(rho=1.0, capacity=10.0)
        thetas = np.array([0.1, 0.2])
        demands = np.ones(2)
        res = greedy_cover(thetas, demands, spec, EXACT)
        return spec, thetas, demands, res

    def test_catches_unserved(self):
        spec, thetas, demands, res = self.make_valid()
        bad = CoverResult(
            orientations=res.orientations,
            assignment=np.array([0, -1]),
            antennas_used=res.antennas_used,
            lower_bound=1,
        )
        with pytest.raises(ValueError):
            verify_cover(thetas, demands, spec, bad)

    def test_catches_overload(self):
        spec = AntennaSpec(rho=1.0, capacity=1.5)
        thetas = np.array([0.1, 0.2])
        demands = np.ones(2)
        bad = CoverResult(
            orientations=np.array([0.0]),
            assignment=np.array([0, 0]),
            antennas_used=1,
            lower_bound=1,
        )
        with pytest.raises(ValueError):
            verify_cover(thetas, demands, spec, bad)

    def test_catches_out_of_arc(self):
        spec = AntennaSpec(rho=0.5, capacity=10.0)
        thetas = np.array([0.1, 3.0])
        demands = np.ones(2)
        bad = CoverResult(
            orientations=np.array([0.0]),
            assignment=np.array([0, 0]),
            antennas_used=1,
            lower_bound=1,
        )
        with pytest.raises(ValueError):
            verify_cover(thetas, demands, spec, bad)
