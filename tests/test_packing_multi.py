"""Tests for multi-antenna solvers: greedy and the non-overlapping DP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model import generators as gen
from repro.packing.exact import solve_exact_angle
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from tests.helpers import brute_force_angle_opt

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def random_instance(rng, n=7, k=2, uniform=True):
    thetas = rng.uniform(0, TWO_PI, n)
    demands = rng.uniform(0.3, 2.0, n)
    cap = 0.4 * demands.sum()
    if uniform:
        rho = float(rng.uniform(0.3, 2.0))
        ant = tuple(AntennaSpec(rho=rho, capacity=cap) for _ in range(k))
    else:
        ant = tuple(
            AntennaSpec(rho=rng.uniform(0.3, 2.0), capacity=cap * rng.uniform(0.5, 1.5))
            for _ in range(k)
        )
    return AngleInstance(thetas=thetas, demands=demands, antennas=ant)


class TestGreedyMulti:
    def test_feasible_and_valued(self):
        inst = gen.uniform_angles(n=40, k=3, seed=0)
        sol = solve_greedy_multi(inst, GREEDY)
        sol.verify(inst)
        assert sol.value(inst) > 0

    def test_adaptive_at_least_first_round(self):
        inst = gen.clustered_angles(n=40, k=3, seed=1)
        plain = solve_greedy_multi(inst, EXACT)
        adaptive = solve_greedy_multi(inst, EXACT, adaptive=True)
        plain.verify(inst)
        adaptive.verify(inst)
        assert adaptive.value(inst) > 0
        assert plain.value(inst) > 0

    def test_antenna_order_validation(self):
        inst = gen.uniform_angles(n=10, k=2, seed=0)
        with pytest.raises(ValueError):
            solve_greedy_multi(inst, GREEDY, antenna_order=[0, 0])

    def test_explicit_order_respected(self):
        inst = gen.uniform_angles(n=10, k=2, seed=0)
        sol = solve_greedy_multi(inst, EXACT, antenna_order=[1, 0])
        sol.verify(inst)

    @pytest.mark.parametrize("seed", range(8))
    def test_half_guarantee_vs_exact(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_instance(rng, n=7, k=2)
        opt = solve_exact_angle(inst).value(inst)
        sol = solve_greedy_multi(inst, EXACT)
        sol.verify(inst)
        assert sol.value(inst) >= 0.5 * opt - 1e-9
        assert sol.value(inst) <= opt + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_greedy_oracle_third_guarantee(self, seed):
        # beta/(1+beta) with beta=1/2 -> 1/3
        rng = np.random.default_rng(100 + seed)
        inst = random_instance(rng, n=7, k=2, uniform=False)
        opt = solve_exact_angle(inst).value(inst)
        sol = solve_greedy_multi(inst, GREEDY)
        assert sol.value(inst) >= opt / 3.0 - 1e-9

    def test_empty_instance(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        sol = solve_greedy_multi(inst, EXACT)
        assert sol.value(inst) == 0.0


class TestNonOverlappingDP:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_exact_disjoint_uniform(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_instance(rng, n=7, k=2)
        dp = solve_non_overlapping_dp(inst, EXACT)
        dp.verify(inst, require_disjoint=True)
        ref = solve_exact_angle(inst, require_disjoint=True).value(inst)
        assert dp.value(inst) == pytest.approx(ref, abs=1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_heterogeneous_bitmask_path(self, seed):
        rng = np.random.default_rng(200 + seed)
        inst = random_instance(rng, n=6, k=2, uniform=False)
        dp = solve_non_overlapping_dp(inst, EXACT)
        dp.verify(inst, require_disjoint=True)
        ref = solve_exact_angle(inst, require_disjoint=True).value(inst)
        assert dp.value(inst) <= ref + 1e-9
        # bitmask DP over the heterogeneous grid is exact for k=2 stacking
        assert dp.value(inst) == pytest.approx(ref, abs=1e-9)

    def test_disjoint_at_most_general_opt(self):
        inst = gen.hotspot_angles(n=25, k=2, seed=3)
        dp = solve_non_overlapping_dp(inst, EXACT)
        greedy = solve_greedy_multi(inst, EXACT, adaptive=True)
        # on hotspot instances overlap usually helps, never hurts
        assert dp.value(inst) <= greedy.value(inst) + max(
            1e-9, 0.5 * greedy.value(inst)
        )

    def test_rejects_huge_k(self):
        inst = gen.uniform_angles(n=5, k=13, seed=0)
        with pytest.raises(ValueError):
            solve_non_overlapping_dp(inst, EXACT)

    def test_empty_instance(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        sol = solve_non_overlapping_dp(inst, EXACT)
        assert sol.value(inst) == 0.0

    def test_single_antenna_dp_equals_single_rotation(self):
        inst = gen.uniform_angles(n=15, k=1, seed=4)
        from repro.packing.single import solve_single_antenna

        dp = solve_non_overlapping_dp(inst, EXACT)
        single = solve_single_antenna(inst, EXACT)
        assert dp.value(inst) == pytest.approx(single.value(inst), abs=1e-9)

    def test_wide_antennas_fallback(self):
        # k * rho > 2*pi: at most one wide arc can be active
        inst = AngleInstance(
            thetas=np.linspace(0, TWO_PI, 8, endpoint=False),
            demands=np.ones(8),
            antennas=tuple(
                AntennaSpec(rho=5.0, capacity=4.0) for _ in range(2)
            ),
        )
        sol = solve_non_overlapping_dp(inst, EXACT)
        sol.verify(inst, require_disjoint=True)
        assert sol.value(inst) == pytest.approx(4.0)


class TestBruteForceAgreement:
    """solve_exact_angle itself cross-checked against naive enumeration."""

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_vs_brute_force(self, seed):
        rng = np.random.default_rng(300 + seed)
        inst = random_instance(rng, n=5, k=2)
        fast = solve_exact_angle(inst).value(inst)
        ref = brute_force_angle_opt(inst)
        assert fast == pytest.approx(ref, abs=1e-9)
