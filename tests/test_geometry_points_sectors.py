"""Tests for repro.geometry.points and repro.geometry.sectors."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.angles import TWO_PI
from repro.geometry.arcs import Arc
from repro.geometry.points import (
    cartesian_to_polar,
    cartesians_to_polar,
    pairwise_distances,
    polar_to_cartesian,
    polars_to_cartesian,
    relative_polar,
)
from repro.geometry.sectors import Sector

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
radii = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)
angles = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)


class TestPolarConversion:
    def test_east(self):
        assert polar_to_cartesian(0.0, 2.0) == pytest.approx((2.0, 0.0))

    def test_north(self):
        x, y = polar_to_cartesian(math.pi / 2, 3.0)
        assert (x, y) == pytest.approx((0.0, 3.0), abs=1e-12)

    def test_origin_round_trip(self):
        assert cartesian_to_polar(0.0, 0.0) == (0.0, 0.0)

    @given(angles, radii)
    def test_round_trip(self, theta, r):
        x, y = polar_to_cartesian(theta, r)
        t2, r2 = cartesian_to_polar(x, y)
        assert r2 == pytest.approx(r, rel=1e-9)
        # angles equal mod 2*pi
        assert math.cos(t2 - theta) == pytest.approx(1.0, abs=1e-9)

    def test_vectorized_matches_scalar(self):
        thetas = np.linspace(0, TWO_PI, 13, endpoint=False)
        rs = np.linspace(0.5, 5.0, 13)
        pts = polars_to_cartesian(thetas, rs)
        t2, r2 = cartesians_to_polar(pts)
        assert np.allclose(r2, rs)
        assert np.allclose(np.cos(t2 - thetas), 1.0)

    def test_cartesians_to_polar_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            cartesians_to_polar(np.zeros((3, 3)))

    def test_origin_angle_is_zero(self):
        t, r = cartesians_to_polar(np.array([[0.0, 0.0]]))
        assert t[0] == 0.0 and r[0] == 0.0


class TestRelativePolar:
    def test_translation(self):
        pts = np.array([[2.0, 1.0]])
        t, r = relative_polar(pts, np.array([1.0, 1.0]))
        assert t[0] == pytest.approx(0.0)
        assert r[0] == pytest.approx(1.0)

    @given(coords, coords, coords, coords)
    def test_distance_matches_hypot(self, px, py, ox, oy):
        t, r = relative_polar(np.array([[px, py]]), np.array([ox, oy]))
        assert r[0] == pytest.approx(math.hypot(px - ox, py - oy), abs=1e-9)


class TestPairwiseDistances:
    def test_shape(self):
        d = pairwise_distances(np.zeros((4, 2)), np.zeros((3, 2)))
        assert d.shape == (4, 3)

    def test_values(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        ctr = np.array([[0.0, 0.0]])
        d = pairwise_distances(pts, ctr)
        assert d[:, 0] == pytest.approx([0.0, 5.0])


class TestSector:
    def test_from_parameters(self):
        s = Sector.from_parameters((0.0, 0.0), alpha=0.5, rho=1.0, radius=2.0)
        assert s.alpha == pytest.approx(0.5)
        assert s.rho == pytest.approx(1.0)
        assert s.radius == 2.0

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            Sector((0, 0), Arc(0.0, 1.0), 0.0)

    def test_contains_interior_point(self):
        s = Sector.from_parameters((0, 0), 0.0, math.pi / 2, 10.0)
        assert s.contains_point(1.0, 1.0)

    def test_excludes_wrong_angle(self):
        s = Sector.from_parameters((0, 0), 0.0, math.pi / 2, 10.0)
        assert not s.contains_point(-1.0, 1.0)

    def test_excludes_beyond_radius(self):
        s = Sector.from_parameters((0, 0), 0.0, math.pi / 2, 1.0)
        assert not s.contains_point(1.0, 1.0)  # distance sqrt(2) > 1

    def test_apex_always_inside(self):
        s = Sector.from_parameters((5.0, -2.0), 1.0, 0.1, 1.0)
        assert s.contains_point(5.0, -2.0)

    def test_boundary_radius_inside(self):
        s = Sector.from_parameters((0, 0), 0.0, 1.0, 2.0)
        assert s.contains_point(2.0, 0.0)

    def test_translated_apex(self):
        s = Sector.from_parameters((10.0, 10.0), 0.0, math.pi / 2, 5.0)
        assert s.contains_point(12.0, 12.0)
        assert not s.contains_point(8.0, 10.0)

    @given(coords, coords, angles, st.floats(min_value=0.0, max_value=TWO_PI), radii, coords, coords)
    def test_scalar_matches_vectorized(self, ax, ay, alpha, rho, R, px, py):
        s = Sector.from_parameters((ax, ay), alpha, rho, R)
        scalar = s.contains_point(px, py)
        vec = bool(s.contains_points(np.array([[px, py]]))[0])
        assert scalar == vec

    def test_vectorized_batch(self):
        s = Sector.from_parameters((0, 0), 0.0, math.pi / 2, 2.0)
        pts = np.array([[1.0, 0.5], [0.0, -1.0], [3.0, 0.0], [0.0, 0.0]])
        mask = s.contains_points(pts)
        assert mask.tolist() == [True, False, False, True]

    def test_area(self):
        s = Sector.from_parameters((0, 0), 0.0, math.pi, 2.0)
        assert s.area == pytest.approx(math.pi / 2 * 4.0 / 1.0 * 1.0)

    def test_full_circle_area(self):
        s = Sector.from_parameters((0, 0), 0.0, TWO_PI, 1.0)
        assert s.area == pytest.approx(math.pi)

    def test_boundary_polygon_shapes(self):
        s = Sector.from_parameters((0, 0), 0.0, 1.0, 1.0)
        poly = s.boundary_polygon(16)
        assert poly.shape[1] == 2
        assert poly.shape[0] >= 3
        full = Sector.from_parameters((0, 0), 0.0, TWO_PI, 1.0)
        assert full.boundary_polygon(16).shape[0] >= 8

    def test_polygon_area_approximates_sector_area(self):
        s = Sector.from_parameters((1.0, 2.0), 0.3, 1.2, 3.0)
        poly = s.boundary_polygon(512)
        x, y = poly[:, 0], poly[:, 1]
        shoelace = 0.5 * abs(
            np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
        )
        assert shoelace == pytest.approx(s.area, rel=1e-3)
