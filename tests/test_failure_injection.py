"""Failure injection: corrupt outputs must be *caught*, never reported.

The library's trust model is "solvers never self-certify" — so these
tests take valid solver outputs, break them in every way a buggy solver
or a damaged file could, and assert that the independent verifiers flag
each corruption.
"""

import json

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import KnapsackResult, get_solver
from repro.model import generators as gen
from repro.model.serialization import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.model.solution import AngleSolution, FeasibilityError, SectorSolution
from repro.packing.covering import CoverResult, cover_instance, verify_cover
from repro.packing.multi import solve_greedy_multi
from repro.packing.sectors import solve_sector_greedy

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


@pytest.fixture()
def angle_case():
    inst = gen.clustered_angles(n=20, k=2, seed=6)
    sol = solve_greedy_multi(inst, EXACT)
    assert sol.violations(inst) == []
    return inst, sol


@pytest.fixture()
def sector_case():
    inst = gen.grid_city(n=40, grid=1, seed=6)
    sol = solve_sector_greedy(inst, GREEDY)
    assert sol.violations(inst) == []
    return inst, sol


class TestAngleSolutionCorruption:
    def test_rotate_antenna_without_reassigning(self, angle_case):
        inst, sol = angle_case
        served = np.flatnonzero(sol.assignment >= 0)
        if served.size == 0:
            pytest.skip("empty solution")
        j = int(sol.assignment[served[0]])
        ori = sol.orientations.copy()
        ori[j] = ori[j] + np.pi  # point the beam away from its customers
        bad = AngleSolution(orientations=ori, assignment=sol.assignment)
        assert any("not in arc" in v for v in bad.violations(inst))

    def test_double_booking_capacity(self, angle_case):
        inst, sol = angle_case
        # cram every served customer onto one antenna it covers, if that
        # overloads it the verifier must complain
        served = np.flatnonzero(sol.assignment >= 0)
        if served.size < 2:
            pytest.skip("not enough served customers")
        asg = sol.assignment.copy()
        target = int(asg[served[0]])
        from repro.geometry.arcs import Arc

        arc = Arc(float(sol.orientations[target]), inst.antennas[target].rho)
        moved = 0
        for i in range(inst.n):
            if arc.contains(float(inst.thetas[i])):
                asg[i] = target
                moved += 1
        bad = AngleSolution(orientations=sol.orientations, assignment=asg)
        load = inst.demands[asg == target].sum()
        if load > inst.antennas[target].capacity * (1 + 1e-9):
            assert any("overloaded" in v for v in bad.violations(inst))
        else:
            pytest.skip("instance too loose to overload")

    def test_negative_index_corruption(self, angle_case):
        inst, sol = angle_case
        asg = sol.assignment.copy()
        asg[0] = -7
        bad = AngleSolution(orientations=sol.orientations, assignment=asg)
        assert bad.violations(inst)

    def test_out_of_range_antenna(self, angle_case):
        inst, sol = angle_case
        asg = sol.assignment.copy()
        asg[0] = inst.k + 3
        bad = AngleSolution(orientations=sol.orientations, assignment=asg)
        assert bad.violations(inst)

    def test_truncated_assignment(self, angle_case):
        inst, sol = angle_case
        bad = AngleSolution(
            orientations=sol.orientations, assignment=sol.assignment[:-1]
        )
        assert bad.violations(inst)

    def test_verify_raises_with_all_violations(self, angle_case):
        inst, sol = angle_case
        asg = sol.assignment.copy()
        asg[0] = inst.k + 3
        asg[1] = -9
        bad = AngleSolution(orientations=sol.orientations, assignment=asg)
        with pytest.raises(FeasibilityError) as ei:
            bad.verify(inst)
        assert len(ei.value.violations) >= 2


class TestSectorSolutionCorruption:
    def test_teleport_station(self, sector_case):
        inst, sol = sector_case
        served = np.flatnonzero(sol.assignment >= 0)
        if served.size == 0:
            pytest.skip("empty solution")
        # move a served customer's assignment to an antenna of a far station
        # by rotating that antenna's orientation arbitrarily: simpler — point
        # the serving antenna away.
        g = int(sol.assignment[served[0]])
        ori = sol.orientations.copy()
        ori[g] += np.pi
        bad = SectorSolution(orientations=ori, assignment=sol.assignment)
        assert any("outside its sector" in v for v in bad.violations(inst))

    def test_radius_violation(self, sector_case):
        inst, sol = sector_case
        # assign the customer farthest from station 0 to its antenna 0
        _, rs = inst.station_polar(0)
        far = int(np.argmax(rs))
        if rs[far] <= inst.stations[0].antennas[0].radius:
            pytest.skip("no out-of-radius customer")
        asg = sol.assignment.copy()
        asg[far] = 0
        bad = SectorSolution(orientations=sol.orientations, assignment=asg)
        # either outside the sector (radius or angle) — both are caught
        assert bad.violations(inst)


class TestSerializationCorruption:
    def test_tampered_demand_sign(self, tmp_path, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["demands"][0] = -1.0
        with pytest.raises(ValueError):
            instance_from_dict(d)

    def test_tampered_antenna_capacity(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["antennas"][0]["capacity"] = 0.0
        with pytest.raises(ValueError):
            instance_from_dict(d)

    def test_truncated_file(self, tmp_path, angle_case):
        inst, _ = angle_case
        p = tmp_path / "x.json"
        save_instance(inst, p)
        p.write_text(p.read_text()[:50])
        with pytest.raises(json.JSONDecodeError):
            load_instance(p)

    def test_mismatched_array_lengths(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["thetas"] = d["thetas"][:-1]
        with pytest.raises(ValueError):
            instance_from_dict(d)


class TestKnapsackResultCorruption:
    def test_forged_value(self):
        w = [1.0, 2.0, 3.0]
        res = EXACT.solve(w, w, 4.0)
        forged = KnapsackResult(
            selected=res.selected, value=res.value + 5.0, weight=res.weight
        )
        with pytest.raises(ValueError):
            forged.verify(w, w, 4.0)

    def test_forged_selection(self):
        w = [1.0, 2.0, 3.0]
        forged = KnapsackResult(selected=np.array([0, 1, 2]), value=6.0, weight=6.0)
        with pytest.raises(ValueError):
            forged.verify(w, w, 4.0)


class TestCoverCorruption:
    def test_dropped_customer(self):
        inst = gen.uniform_angles(n=15, k=1, rho=1.5, capacity_fraction=0.3, seed=9)
        res = cover_instance(inst, GREEDY)
        bad_assignment = res.assignment.copy()
        bad_assignment[0] = -1
        bad = CoverResult(
            orientations=res.orientations,
            assignment=bad_assignment,
            antennas_used=res.antennas_used,
            lower_bound=res.lower_bound,
        )
        with pytest.raises(ValueError):
            verify_cover(inst.thetas, inst.demands, inst.antennas[0], bad)

    def test_forged_antenna_count(self):
        inst = gen.uniform_angles(n=10, k=1, rho=1.5, capacity_fraction=0.3, seed=9)
        res = cover_instance(inst, GREEDY)
        bad = CoverResult(
            orientations=res.orientations,
            assignment=res.assignment,
            antennas_used=res.antennas_used + 1,
            lower_bound=res.lower_bound,
        )
        with pytest.raises(ValueError):
            verify_cover(inst.thetas, inst.demands, inst.antennas[0], bad)


class TestTypedInstanceValidation:
    """InvalidInstanceError names the offending field at deserialization."""

    def err_for(self, d):
        from repro.model import InvalidInstanceError

        with pytest.raises(InvalidInstanceError) as exc:
            instance_from_dict(d)
        return exc.value

    def test_nan_demand_names_field_and_entry(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["demands"][3] = float("nan")
        err = self.err_for(d)
        assert err.field == "demands"
        assert "entry 3" in str(err)

    def test_negative_demand_names_field_and_entry(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["demands"][0] = -1.0
        err = self.err_for(d)
        assert err.field == "demands"
        assert "entry 0" in str(err)

    def test_nonpositive_profit_names_field(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["profits"][2] = 0.0
        err = self.err_for(d)
        assert err.field == "profits"
        assert "entry 2" in str(err)

    def test_infinite_theta_names_field(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["thetas"][1] = float("inf")
        err = self.err_for(d)
        assert err.field == "thetas"
        assert "entry 1" in str(err)

    def test_out_of_range_rho_names_antenna(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["antennas"][1]["rho"] = 100.0
        assert self.err_for(d).field == "antennas[1]"

    def test_missing_key_names_field(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        del d["demands"]
        assert self.err_for(d).field == "demands"

    def test_unknown_kind(self, angle_case):
        inst, _ = angle_case
        d = instance_to_dict(inst)
        d["kind"] = "hexagon"
        assert self.err_for(d).field == "kind"

    def test_nonfinite_position_names_row(self, sector_case):
        inst, _ = sector_case
        d = instance_to_dict(inst)
        d["positions"][2][0] = float("nan")
        err = self.err_for(d)
        assert err.field == "positions"
        assert "row 2" in str(err)

    def test_error_is_a_value_error(self):
        # Callers that only know ValueError keep working.
        from repro.model import InvalidInstanceError

        assert issubclass(InvalidInstanceError, ValueError)
