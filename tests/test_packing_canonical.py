"""Tests for the rotation lemma machinery (repro.packing.canonical)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.geometry.arcs import Arc
from repro.packing.canonical import canonical_starts, rotation_candidates

angle_lists = st.lists(
    st.floats(min_value=0.0, max_value=TWO_PI - 1e-9, allow_nan=False),
    min_size=1,
    max_size=15,
)


class TestCanonicalStarts:
    def test_empty_gives_origin(self):
        assert canonical_starts([]).tolist() == [0.0]

    def test_deduplicates(self):
        out = canonical_starts([1.0, 1.0, 2.0])
        assert out.tolist() == [1.0, 2.0]

    def test_sorted(self):
        out = canonical_starts([3.0, 1.0, 2.0])
        assert (np.diff(out) > 0).all()

    def test_normalizes(self):
        out = canonical_starts([-1.0])
        assert out[0] == pytest.approx(TWO_PI - 1.0)

    @settings(max_examples=120)
    @given(
        angle_lists,
        st.floats(min_value=0.01, max_value=TWO_PI, allow_nan=False),
        st.floats(min_value=-20, max_value=20, allow_nan=False),
    )
    def test_rotation_lemma(self, thetas, rho, alpha):
        """The lemma itself: some canonical window covers any arc's coverage."""
        thetas = np.asarray(thetas)
        arc = Arc(alpha, rho)
        covered = {i for i in range(len(thetas)) if arc.contains(float(thetas[i]))}
        if not covered:
            return
        found = False
        for s in canonical_starts(thetas):
            cand = Arc(float(s), rho)
            if all(cand.contains(float(thetas[i])) for i in covered):
                found = True
                break
        assert found


class TestRotationCandidates:
    def test_scalar_width_no_stacking_is_canonical(self):
        thetas = [0.5, 1.5]
        out = rotation_candidates(thetas, 1.0)
        assert out.tolist() == [0.5, 1.5]

    def test_uniform_grid(self):
        thetas = [1.0]
        out = rotation_candidates(thetas, [0.5, 0.5])  # k=2 identical
        # grid: 1.0 + j*0.5 for j in -1..1
        assert np.allclose(sorted(out), [0.5, 1.0, 1.5])

    def test_stacking_override(self):
        out = rotation_candidates([1.0], 0.5, stacking=2)
        assert np.allclose(sorted(out), [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_heterogeneous_subset_sums(self):
        out = rotation_candidates([0.0], [0.3, 0.5])
        expected = {0.0, 0.3, 0.5, 0.8, TWO_PI - 0.3, TWO_PI - 0.5, TWO_PI - 0.8}
        # signed subset sums of {0.3, 0.5} around 0.0, plus 0.3-0.5 combos
        for e in expected:
            assert np.isclose(out, e % TWO_PI, atol=1e-9).any()

    def test_heterogeneous_rejects_large_k(self):
        with pytest.raises(ValueError):
            rotation_candidates([0.0], list(np.linspace(0.1, 0.2, 11)))

    def test_contains_base_angles(self):
        thetas = [0.2, 3.0, 5.0]
        out = rotation_candidates(thetas, [1.0, 1.0, 1.0])
        for t in thetas:
            assert np.isclose(out, t, atol=1e-12).any()

    @given(angle_lists, st.floats(min_value=0.05, max_value=2.0))
    def test_all_normalized_unique(self, thetas, rho):
        out = rotation_candidates(thetas, [rho, rho])
        assert (out >= 0).all() and (out < TWO_PI).all()
        assert np.unique(out).size == out.size
