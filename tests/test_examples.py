"""Smoke tests: every example script runs end-to-end and prints output.

Examples are documentation; a rotted example is worse than none.  Each is
executed in-process via runpy with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report, not a silent exit


def test_all_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "cellular_downlink",
        "stadium_hotspots",
        "wisp_splittable",
        "online_admission",
        "coverage_planning",
        "day_night_steering",
    } <= names
