"""The pluggable constraint pipeline: masks, kernels, threading, exactness.

The contract under test (``docs/SCENARIOS.md``): a constraint compiles to
one boolean mask per (station, customer) pair; composition is a plain AND;
the scalar path is the oracle and the vectorized kernels reproduce it
bit-for-bit; the compiled core folds the composed mask into the
per-antenna eligibility triple once, so every solver, the partitioner and
the online delta layer honor constraints without private recomputation.
Also pinned here: the no-constraints path stays bit-identical to the
pre-pipeline code (the eligibility masks *are* the memoized fit-mask
objects), wire round-trips, fingerprint coverage, partition exactness
under blockage, and per-event delta patching of constraint masks.
"""

import math

import numpy as np
import pytest

from repro.core.backend import los_blocked, topk_station_mask
from repro.core.compiled import CompiledSectorInstance
from repro.engine import SolveRequest, clear_caches, solve
from repro.engine.cache import fingerprint
from repro.engine.partition import partition_instance
from repro.model.antenna import AntennaSpec
from repro.model.constraints import (
    CONSTRAINT_KINDS,
    LosBlockage,
    MaxAssignments,
    Reach,
    _pair_blocked,
    _topk_stations,
    compose_station_masks,
    constraint_from_dict,
    constraint_to_dict,
    constraints_from_wire,
    effective_column,
    nontrivial_constraints,
)
from repro.model.generators import SECTOR_FAMILIES, power_law_metro, scenario_metro_blockage
from repro.model.instance import InvalidInstanceError, SectorInstance, Station
from repro.model.serialization import (
    sector_instance_from_dict,
    sector_instance_to_dict,
)
from repro.model.solution import FeasibilityError
from repro.online.delta import (
    AddCustomer,
    DeltaCompiledInstance,
    RemoveCustomer,
    UpdateDemand,
)


def _two_station_instance(positions, demands=None, constraints=()):
    """Two stations 10 apart, radius 5 each: disjoint reach disks."""
    stations = (
        Station(position=(0.0, 0.0),
                antennas=(AntennaSpec(rho=math.pi, capacity=100.0, radius=5.0),)),
        Station(position=(10.0, 0.0),
                antennas=(AntennaSpec(rho=math.pi, capacity=100.0, radius=5.0),)),
    )
    positions = np.asarray(positions, dtype=np.float64)
    if demands is None:
        demands = np.ones(positions.shape[0])
    return SectorInstance(
        positions=positions,
        demands=np.asarray(demands, dtype=np.float64),
        stations=stations,
        constraints=constraints,
    )


def _overlapping_station_instance(positions, demands=None, constraints=()):
    """Three stations close enough that every customer reaches all three."""
    stations = tuple(
        Station(position=(float(x), 0.0),
                antennas=(AntennaSpec(rho=math.pi, capacity=100.0, radius=8.0),))
        for x in (0.0, 1.0, 2.0)
    )
    positions = np.asarray(positions, dtype=np.float64)
    if demands is None:
        demands = np.ones(positions.shape[0])
    return SectorInstance(
        positions=positions,
        demands=np.asarray(demands, dtype=np.float64),
        stations=stations,
        constraints=constraints,
    )


class TestWireGrammar:
    def test_round_trip_each_kind(self):
        specs = (
            Reach(),
            LosBlockage(segments=((0.0, -1.0, 0.0, 1.0), (2.0, 2.0, 3.0, 3.0))),
            MaxAssignments(limit=2),
        )
        for spec in specs:
            assert constraint_from_dict(constraint_to_dict(spec)) == spec

    def test_instance_wire_round_trip_preserves_constraints(self):
        inst = _two_station_instance(
            [[1.0, 0.0], [9.0, 0.0]],
            constraints=(LosBlockage(segments=((0.5, -1.0, 0.5, 1.0),)),
                         MaxAssignments(limit=1)),
        )
        revived = sector_instance_from_dict(sector_instance_to_dict(inst))
        assert revived.constraints == inst.constraints
        assert fingerprint(revived) == fingerprint(inst)

    def test_unconstrained_wire_dict_has_no_constraints_key(self):
        inst = _two_station_instance([[1.0, 0.0]])
        assert "constraints" not in sector_instance_to_dict(inst)

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidInstanceError):
            constraint_from_dict({"kind": "teleport"})

    def test_unknown_field_rejected(self):
        with pytest.raises(InvalidInstanceError):
            constraint_from_dict({"kind": "reach", "strength": 3})

    def test_malformed_segment_rejected(self):
        with pytest.raises(InvalidInstanceError):
            LosBlockage(segments=((0.0, 1.0, 2.0),))
        with pytest.raises(InvalidInstanceError):
            LosBlockage(segments=((0.0, 1.0, float("nan"), 2.0),))

    def test_bad_limit_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MaxAssignments(limit=0)

    def test_wire_list_must_be_a_list(self):
        with pytest.raises(InvalidInstanceError):
            constraints_from_wire({"kind": "reach"})

    def test_non_constraint_entry_rejected_by_instance(self):
        with pytest.raises(InvalidInstanceError):
            _two_station_instance([[1.0, 0.0]], constraints=("reach",))

    def test_every_registered_kind_serializes(self):
        for kind, cls in CONSTRAINT_KINDS.items():
            assert constraint_to_dict(cls())["kind"] == kind


class TestLosGeometry:
    def test_wall_blocks_crossing_pair(self):
        # Wall at x=0.5 between station 0 at origin and a customer at x=1.
        inst = _two_station_instance(
            [[1.0, 0.0], [9.0, 0.0]],
            constraints=(LosBlockage(segments=((0.5, -1.0, 0.5, 1.0),)),),
        )
        masks = inst.compile().constraint_masks()
        assert not masks[0][0]  # blocked pair
        assert masks[1][1]      # untouched pair

    def test_touching_endpoint_does_not_block(self):
        # Wall endpoint exactly on the sight line: strict test, no block.
        inst = _two_station_instance(
            [[1.0, 0.0]],
            constraints=(LosBlockage(segments=((0.5, 0.0, 0.5, 1.0),)),),
        )
        masks = inst.compile().constraint_masks()
        assert masks is None or masks[0][0]

    def test_collinear_overlap_does_not_block(self):
        inst = _two_station_instance(
            [[1.0, 0.0]],
            constraints=(LosBlockage(segments=((0.25, 0.0, 0.75, 0.0),)),),
        )
        masks = inst.compile().constraint_masks()
        assert masks is None or masks[0][0]

    def test_out_of_reach_pair_left_unmasked(self):
        # The wall crosses station 0's line to the far customer, but that
        # customer is outside station 0's radius: the mask stays True and
        # the fitting-radius mask alone excludes the pair.
        inst = _two_station_instance(
            [[9.0, 0.0]],
            constraints=(LosBlockage(segments=((0.5, -1.0, 0.5, 1.0),)),),
        )
        masks = inst.compile().constraint_masks()
        assert masks[0][0]
        elig, _, _ = inst.compile().eligibility()
        assert not elig[0][0]

    def test_column_matches_station_masks(self):
        inst = _two_station_instance(
            [[1.0, 0.0], [4.0, 0.0], [9.0, 0.0]],
            constraints=(LosBlockage(segments=((0.5, -1.0, 0.5, 1.0),)),
                         MaxAssignments(limit=1)),
        )
        compiled = inst.compile()
        masks = compiled.constraint_masks()
        station_positions = [st.position for st in inst.stations]
        max_radii = [st.max_radius for st in inst.stations]
        for i in range(inst.n):
            rs_to_stations = [
                float(compiled.station(s).rs[i]) for s in range(len(inst.stations))
            ]
            col = effective_column(
                inst.constraints, station_positions,
                (float(inst.positions[i, 0]), float(inst.positions[i, 1])),
                rs_to_stations, max_radii,
            )
            assert col is not None
            for s in range(len(inst.stations)):
                assert col[s] == bool(masks[s][i]), (i, s)


class TestMaxAssignments:
    def test_keeps_only_nearest_limit(self):
        inst = _overlapping_station_instance(
            [[0.9, 0.0]], constraints=(MaxAssignments(limit=2),)
        )
        masks = inst.compile().constraint_masks()
        # Distances to stations at x=0,1,2 are 0.9, 0.1, 1.1: keep 1 and 0.
        assert masks[0][0] and masks[1][0] and not masks[2][0]

    def test_tie_breaks_by_station_id(self):
        inst = _overlapping_station_instance(
            [[1.0, 0.5]], constraints=(MaxAssignments(limit=1),)
        )
        masks = inst.compile().constraint_masks()
        # Stations 0 and 2 tie at distance hypot(1, .5); station 1 is
        # nearest.  With limit=1 only station 1 survives.
        assert not masks[0][0] and masks[1][0] and not masks[2][0]

    def test_all_pass_when_stations_at_most_limit(self):
        inst = _two_station_instance(
            [[1.0, 0.0]], constraints=(MaxAssignments(limit=2),)
        )
        assert inst.compile().constraint_masks() is None

    def test_ranking_restricted_to_reaching_stations(self):
        # The nearest station by raw distance may not reach; ranking must
        # skip it.  Station 0 has radius 5, so a customer at x=6 is only
        # reached by station 1 (at x=10) — that one must survive.
        inst = _two_station_instance(
            [[6.0, 0.0]], constraints=(MaxAssignments(limit=1),)
        )
        masks = inst.compile().constraint_masks()
        assert masks[1][0]


class TestKernelOracleIdentity:
    def test_los_blocked_matches_pair_blocked(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            k = int(rng.integers(1, 6))
            n = int(rng.integers(1, 40))
            segs = rng.uniform(-5.0, 5.0, size=(k, 4))
            pos = rng.uniform(-5.0, 5.0, size=(n, 2))
            sx, sy = (float(v) for v in rng.uniform(-5.0, 5.0, size=2))
            vec = los_blocked(sx, sy, pos, segs)
            ref = np.array([
                _pair_blocked(sx, sy, float(p[0]), float(p[1]),
                              [tuple(s) for s in segs])
                for p in pos
            ])
            assert np.array_equal(vec, ref)

    def test_topk_kernel_matches_scalar_oracle(self):
        rng = np.random.default_rng(13)
        for _ in range(25):
            m = int(rng.integers(2, 8))
            n = int(rng.integers(1, 50))
            limit = int(rng.integers(1, m + 1))
            rs_all = rng.uniform(0.0, 10.0, size=(m, n))
            if n > 3:  # exact distance ties exercise the id tie-break
                rs_all[:, 1] = rs_all[:, 0]
                rs_all[m // 2, 2] = rs_all[0, 2]
            radii = rng.uniform(2.0, 9.0, size=m)
            mask = topk_station_mask(rs_all, radii, limit)
            for i in range(n):
                keep = _topk_stations(
                    [rs_all[s, i] for s in range(m)], radii, limit
                )
                assert set(np.flatnonzero(mask[:, i])) == keep

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_compose_scalar_equals_numpy_on_scenarios(self, seed):
        inst = scenario_metro_blockage(n=600, towns=4, seed=seed)
        compiled = CompiledSectorInstance(inst)
        compiled.ensure_stations()
        m = len(inst.stations)
        rs = [compiled.station(s).rs for s in range(m)]
        scalar = compose_station_masks(inst, rs, backend="python")
        vector = compose_station_masks(inst, rs, backend="numpy")
        assert scalar is not None and vector is not None
        for s in range(m):
            assert np.array_equal(scalar[s], vector[s])


class TestCompiledIntegration:
    def test_unconstrained_masks_are_the_memoized_fit_masks(self):
        # The pre-pipeline fast path: with no constraints, eligibility
        # returns the fit-mask objects themselves — zero composition work
        # and bit-identity with the pre-refactor code by construction.
        inst = _two_station_instance([[1.0, 0.0], [9.0, 0.0]])
        compiled = inst.compile()
        assert compiled.constraint_masks() is None
        masks, _, _ = compiled.eligibility()
        for g, s_id, spec in inst.antenna_table():
            assert masks[g] is compiled.station(s_id).fit_mask(spec.radius)

    def test_reach_only_constraints_compose_to_none(self):
        inst = _two_station_instance(
            [[1.0, 0.0]], constraints=(Reach(),)
        )
        assert inst.compile().constraint_masks() is None
        assert nontrivial_constraints(inst.constraints) == ()

    @pytest.mark.parametrize("algorithm", ["greedy", "independent", "greedy+ls"])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_reach_constraint_is_value_identical_to_unconstrained(
        self, algorithm, backend
    ):
        rng = np.random.default_rng(3)
        positions = np.vstack([
            rng.uniform(-4.0, 4.0, size=(12, 2)),
            rng.uniform(6.0, 14.0, size=(12, 2)),
        ])
        demands = rng.uniform(0.5, 2.0, size=24)
        bare = _two_station_instance(positions, demands)
        declared = _two_station_instance(
            positions, demands, constraints=(Reach(),)
        )
        values = []
        for inst in (bare, declared):
            clear_caches()
            report = solve(SolveRequest(
                instance=inst, family="sector", algorithm=algorithm,
                eps=0.5, backend=backend, use_cache=False,
            ))
            values.append(report.value)
        assert values[0] == values[1]

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_constrained_solves_respect_every_mask(self, backend):
        inst = scenario_metro_blockage(n=400, towns=4, seed=2)
        masks = inst.compile().constraint_masks()
        assert masks is not None
        for algorithm in ("greedy", "independent"):
            clear_caches()
            report = solve(SolveRequest(
                instance=inst, family="sector", algorithm=algorithm,
                eps=0.1, backend=backend, use_cache=False,
            ))
            solution = report.solution.verify(inst)
            for g, s_id, _spec in inst.antenna_table():
                members = np.flatnonzero(solution.assignment == g)
                assert masks[s_id][members].all()

    def test_violations_flag_masked_assignment(self):
        inst = _two_station_instance(
            [[1.0, 0.0]],
            constraints=(LosBlockage(segments=((0.5, -1.0, 0.5, 1.0),)),),
        )
        clear_caches()
        report = solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            eps=0.5, use_cache=False,
        ))
        bad = report.solution
        object.__setattr__(
            bad, "assignment", np.zeros(1, dtype=bad.assignment.dtype)
        )
        # Antenna 0 (station 0) cannot see customer 0 through the wall.
        problems = bad.violations(inst)
        assert any("constraint" in p for p in problems)
        with pytest.raises(FeasibilityError):
            bad.verify(inst)

    def test_fingerprint_covers_constraints(self):
        positions = [[1.0, 0.0], [9.0, 0.0]]
        bare = _two_station_instance(positions)
        walled = _two_station_instance(
            positions,
            constraints=(LosBlockage(segments=((0.5, -1.0, 0.5, 1.0),)),),
        )
        other_wall = _two_station_instance(
            positions,
            constraints=(LosBlockage(segments=((0.6, -1.0, 0.6, 1.0),)),),
        )
        capped = _two_station_instance(
            positions, constraints=(MaxAssignments(limit=1),)
        )
        prints = {
            fingerprint(bare), fingerprint(walled),
            fingerprint(other_wall), fingerprint(capped),
        }
        assert len(prints) == 4


class TestPartitionExactness:
    def test_parts_carry_constraints(self):
        inst = scenario_metro_blockage(n=300, towns=3, seed=4)
        plan = partition_instance(inst)
        assert len(plan.parts) >= 2
        for part in plan.parts:
            assert part.sub.constraints == inst.constraints

    def test_fully_blocked_customer_counts_unreachable(self):
        # Within raw reach of the only station, but the wall occludes it:
        # effective eligibility is empty, so the partitioner must not
        # assign it to any component.
        station = Station(
            position=(0.0, 0.0),
            antennas=(AntennaSpec(rho=math.pi, capacity=10.0, radius=5.0),),
        )
        inst = SectorInstance(
            positions=np.array([[1.0, 0.0], [0.0, 1.0]]),
            demands=np.ones(2),
            stations=(station,),
            constraints=(LosBlockage(segments=((0.5, -0.5, 0.5, 0.5),)),),
        )
        plan = partition_instance(inst)
        assert plan.unreachable == 1

    @pytest.mark.parametrize("algorithm", ["greedy", "independent"])
    def test_partitioned_value_matches_monolithic_under_constraints(
        self, algorithm
    ):
        for seed in (0, 5):
            inst = scenario_metro_blockage(n=400, towns=4, seed=seed)
            values = []
            for partition in ("never", "force"):
                clear_caches()
                report = solve(SolveRequest(
                    instance=inst, family="sector", algorithm=algorithm,
                    eps=0.1, partition=partition, use_cache=False,
                ))
                values.append(report.value)
            # Towns are farther apart than any reach: the decomposition
            # is exact, so partitioned == monolithic to the bit.
            assert values[0] == values[1]


class TestDeltaConstraints:
    def test_patched_masks_bit_identical_to_recompile(self):
        inst = scenario_metro_blockage(n=150, towns=3, seed=6)
        rng = np.random.default_rng(17)
        delta = DeltaCompiledInstance(inst)
        positions = inst.positions.copy()
        demands = inst.demands.copy()
        profits = inst.profits.copy()
        for i in range(15):
            if i % 3 == 0:
                x = float(rng.uniform(-20.0, 60.0))
                y = float(rng.uniform(-20.0, 60.0))
                d = float(rng.uniform(0.5, 2.0))
                delta.apply(AddCustomer(demand=d, position=(x, y)))
                positions = np.vstack([positions, [x, y]])
                demands = np.append(demands, d)
                profits = np.append(profits, d)
            elif i % 3 == 1:
                j = int(rng.integers(0, positions.shape[0]))
                delta.apply(RemoveCustomer(index=j))
                positions = np.delete(positions, j, axis=0)
                demands = np.delete(demands, j)
                profits = np.delete(profits, j)
            else:
                j = int(rng.integers(0, positions.shape[0]))
                v = float(rng.uniform(0.5, 2.0))
                delta.apply(UpdateDemand(index=j, demand=v, profit=v))
                demands = demands.copy()
                demands[j] = v
                profits = profits.copy()
                profits[j] = v
            ref = SectorInstance(
                positions=positions, demands=demands, profits=profits,
                stations=inst.stations, constraints=inst.constraints,
            )
            fresh = ref.compile()
            view = delta.compiled
            patched = view.constraint_masks()
            recompiled = fresh.constraint_masks()
            assert (patched is None) == (recompiled is None)
            if patched is not None:
                for s in range(len(inst.stations)):
                    assert np.array_equal(patched[s], recompiled[s]), (i, s)
            for a, b in zip(view.eligibility(), fresh.eligibility()):
                for ga, gb in zip(a, b):
                    assert np.array_equal(ga, gb)
            assert delta.instance.constraints == inst.constraints
            assert fingerprint(delta.instance) == fingerprint(ref)


class TestScenarioGenerator:
    def test_registered_in_family_table(self):
        assert SECTOR_FAMILIES["scenario"] is scenario_metro_blockage

    def test_deterministic_per_seed(self):
        a = scenario_metro_blockage(n=200, seed=9)
        b = scenario_metro_blockage(n=200, seed=9)
        c = scenario_metro_blockage(n=200, seed=10)
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a) != fingerprint(c)

    def test_base_geometry_matches_power_law_metro(self):
        # The scenario draws its customers through power_law_metro with
        # the shared generator before any segment draws, so the base
        # geometry is exactly the unconstrained family's.
        scenario = scenario_metro_blockage(n=300, towns=4, seed=11)
        base = power_law_metro(n=300, towns=4, stations_per_town=2, seed=11)
        assert np.array_equal(scenario.positions, base.positions)
        assert np.array_equal(scenario.demands, base.demands)

    def test_carries_both_constraint_kinds(self):
        inst = scenario_metro_blockage(n=100, seed=0)
        kinds = {type(c) for c in inst.constraints}
        assert LosBlockage in kinds and MaxAssignments in kinds

    def test_masks_nontrivial(self):
        inst = scenario_metro_blockage(n=400, towns=4, seed=1)
        masks = inst.compile().constraint_masks()
        assert masks is not None
        assert any(not mask.all() for mask in masks)
