"""Hypothesis property tests for the 2-D sector pipeline."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import SectorInstance, Station
from repro.packing.sectors import (
    improve_sector_solution,
    sector_covered_matrix,
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)

GREEDY = get_solver("greedy")

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def sector_instances(draw, max_n=12, max_stations=2):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_stations))
    coords = st.floats(min_value=-10.0, max_value=10.0)
    positions = np.array(
        [[draw(coords), draw(coords)] for _ in range(n)]
    )
    demands = np.array(
        [draw(st.floats(min_value=0.2, max_value=2.0)) for _ in range(n)]
    )
    stations = []
    for s in range(m):
        k = draw(st.integers(min_value=1, max_value=2))
        antennas = tuple(
            AntennaSpec(
                rho=draw(st.floats(min_value=0.3, max_value=TWO_PI)),
                capacity=draw(st.floats(min_value=0.5, max_value=5.0)),
                radius=draw(st.floats(min_value=2.0, max_value=15.0)),
            )
            for _ in range(k)
        )
        stations.append(
            Station(position=(draw(coords), draw(coords)), antennas=antennas)
        )
    return SectorInstance(
        positions=positions, demands=demands, stations=tuple(stations)
    )


class TestSectorProperties:
    @SLOW
    @given(sector_instances())
    def test_greedy_always_feasible(self, inst):
        sol = solve_sector_greedy(inst, GREEDY)
        assert sol.violations(inst) == []

    @SLOW
    @given(sector_instances())
    def test_baseline_always_feasible(self, inst):
        sol = solve_sector_independent(inst, GREEDY)
        assert sol.violations(inst) == []

    @SLOW
    @given(sector_instances())
    def test_local_search_monotone(self, inst):
        base = solve_sector_greedy(inst, GREEDY, adaptive=False)
        improved = improve_sector_solution(inst, base, GREEDY, max_rounds=2)
        assert improved.violations(inst) == []
        assert improved.value(inst) >= base.value(inst) - 1e-9

    @SLOW
    @given(sector_instances())
    def test_splittable_dominates_greedy(self, inst):
        sol = solve_sector_greedy(inst, GREEDY)
        _, ub = solve_sector_splittable(inst, sol.orientations)
        assert sol.value(inst) <= ub + 1e-6

    @SLOW
    @given(sector_instances())
    def test_covered_matrix_consistent_with_verifier(self, inst):
        """Assignment built directly from the coverage matrix verifies."""
        rng = np.random.default_rng(0)
        ori = rng.uniform(0, TWO_PI, inst.total_antennas)
        cover = sector_covered_matrix(inst, ori)
        # serve at most one cheapest-feasible customer per antenna
        from repro.model.solution import SectorSolution

        assignment = np.full(inst.n, -1, dtype=np.int64)
        caps = [spec.capacity for _, _, spec in inst.antenna_table()]
        for g in range(inst.total_antennas):
            eligible = np.flatnonzero(cover[:, g] & (assignment == -1))
            eligible = [i for i in eligible if inst.demands[i] <= caps[g]]
            if eligible:
                cheapest = min(eligible, key=lambda i: inst.demands[i])
                assignment[cheapest] = g
        sol = SectorSolution(orientations=ori, assignment=assignment)
        assert sol.violations(inst) == []

    @SLOW
    @given(sector_instances(max_stations=1))
    def test_station_angle_reduction_consistent(self, inst):
        """Customers in the reduced 1-D instance are exactly those within
        the station's minimum radius."""
        sub, idx = inst.station_angle_instance(0)
        _, rs = inst.station_polar(0)
        r_min = min(a.radius for a in inst.stations[0].antennas)
        expected = set(np.flatnonzero(rs <= r_min * (1 + 1e-12)).tolist())
        assert set(idx.tolist()) == expected
        assert sub.n == len(expected)
