"""Tests for the knapsack engine.

Every solver is validated against an independent brute-force optimum on
random small instances, and each approximation guarantee is asserted as a
hard property (never merely observed).
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.knapsack import (
    FractionalResult,
    KnapsackResult,
    get_solver,
    solve_branch_and_bound,
    solve_exact_auto,
    solve_exact_integer,
    solve_fptas,
    solve_fractional,
    solve_greedy,
)
from repro.knapsack.api import KNAPSACK_SOLVERS
from repro.knapsack.fractional import fractional_upper_bound
from repro.knapsack.greedy import solve_greedy_by_weight


def brute_force(weights, profits, capacity):
    """Reference optimum by subset enumeration (n <= ~16)."""
    n = len(weights)
    best = 0.0
    for r in range(n + 1):
        for combo in itertools.combinations(range(n), r):
            wsum = sum(weights[i] for i in combo)
            if wsum <= capacity + 1e-12:
                best = max(best, sum(profits[i] for i in combo))
    return best


small_instances = st.builds(
    lambda ws, ps, cf: (
        ws,
        ps[: len(ws)] + [1.0] * max(0, len(ws) - len(ps)),
        cf * (sum(ws) if ws else 1.0),
    ),
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=0, max_size=10),
    st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=0, max_size=10),
    st.floats(min_value=0.0, max_value=1.2),
)

integer_instances = st.builds(
    lambda ws, cf: (ws, int(cf * sum(ws)) if ws else 0),
    st.lists(st.integers(min_value=1, max_value=30), min_size=0, max_size=12),
    st.floats(min_value=0.0, max_value=1.2),
)


class TestKnapsackResult:
    def test_empty(self):
        r = KnapsackResult.empty()
        assert r.value == 0.0 and r.weight == 0.0 and r.selected.size == 0

    def test_of_recomputes(self):
        r = KnapsackResult.of([0, 2], [1.0, 2.0, 3.0], [5.0, 6.0, 7.0])
        assert r.value == 12.0
        assert r.weight == 4.0

    def test_selected_sorted(self):
        r = KnapsackResult.of([2, 0], [1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert r.selected.tolist() == [0, 2]

    def test_verify_catches_overweight(self):
        r = KnapsackResult.of([0, 1], [3.0, 3.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            r.verify([3.0, 3.0], [1.0, 1.0], capacity=4.0)

    def test_verify_catches_bad_index(self):
        r = KnapsackResult(selected=np.array([5]), value=0.0, weight=0.0)
        with pytest.raises(ValueError):
            r.verify([1.0], [1.0], 10.0)

    def test_verify_catches_duplicates(self):
        r = KnapsackResult(selected=np.array([0, 0]), value=2.0, weight=2.0)
        with pytest.raises(ValueError):
            r.verify([1.0], [1.0], 10.0)

    def test_verify_catches_wrong_value(self):
        r = KnapsackResult(selected=np.array([0]), value=99.0, weight=1.0)
        with pytest.raises(ValueError):
            r.verify([1.0], [2.0], 10.0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            KnapsackResult.of([0], [1.0, 2.0], [1.0])


class TestExactInteger:
    def test_trivial(self):
        r = solve_exact_integer([], [], 10.0)
        assert r.value == 0.0

    def test_textbook(self):
        # classic: weights 1..4, profits 1,4,5,7, cap 7 -> take 2,3 (w=3+4) value 12? no:
        w, p, c = [1, 3, 4, 5], [1, 4, 5, 7], 7
        r = solve_exact_integer(w, p, c)
        assert r.value == brute_force(w, p, c) == 9.0

    def test_rejects_fractional_weights(self):
        with pytest.raises(ValueError):
            solve_exact_integer([1.5], [1.0], 2.0)

    def test_zero_capacity_takes_free_items(self):
        r = solve_exact_integer([0.0, 1.0], [5.0, 5.0], 0.0)
        assert r.value == 5.0
        assert r.selected.tolist() == [0]

    def test_zero_weight_items_always_taken(self):
        r = solve_exact_integer([0, 2], [3.0, 4.0], 2.0)
        assert r.value == 7.0

    @settings(max_examples=100, deadline=None)
    @given(integer_instances)
    def test_matches_brute_force(self, inst):
        ws, cap = inst
        ps = [float(x) for x in ws]  # profit = weight (the paper's objective)
        r = solve_exact_integer(ws, ps, cap)
        r.verify(ws, ps, cap)
        assert r.value == pytest.approx(brute_force(ws, ps, cap), abs=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(integer_instances, st.randoms(use_true_random=False))
    def test_matches_brute_force_general_profits(self, inst, rnd):
        ws, cap = inst
        ps = [rnd.uniform(0.5, 8.0) for _ in ws]
        r = solve_exact_integer(ws, ps, cap)
        r.verify(ws, ps, cap)
        assert r.value == pytest.approx(brute_force(ws, ps, cap), abs=1e-6)


class TestBranchAndBound:
    @settings(max_examples=100, deadline=None)
    @given(small_instances)
    def test_matches_brute_force(self, inst):
        ws, ps, cap = inst
        r = solve_branch_and_bound(ws, ps, cap)
        r.verify(ws, ps, cap)
        assert r.value == pytest.approx(brute_force(ws, ps, cap), abs=1e-6)

    def test_empty(self):
        assert solve_branch_and_bound([], [], 1.0).value == 0.0

    def test_nothing_fits(self):
        r = solve_branch_and_bound([5.0, 6.0], [1.0, 1.0], 2.0)
        assert r.value == 0.0

    def test_node_budget(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(1, 2, size=30)
        with pytest.raises(RuntimeError):
            solve_branch_and_bound(w, w, w.sum() / 2, max_nodes=5)

    def test_float_weights_exact(self):
        w = [1.1, 2.2, 3.3]
        p = [1.0, 2.0, 3.1]
        r = solve_branch_and_bound(w, p, 5.5)
        assert r.value == pytest.approx(brute_force(w, p, 5.5))


class TestExactAuto:
    def test_dispatches_integer(self):
        r = solve_exact_auto([1, 2, 3], [1.0, 2.0, 3.0], 4)
        assert r.value == 4.0

    def test_dispatches_float(self):
        r = solve_exact_auto([1.5, 2.5], [2.0, 3.0], 2.6)
        assert r.value == 3.0

    @settings(max_examples=60, deadline=None)
    @given(small_instances)
    def test_always_optimal(self, inst):
        ws, ps, cap = inst
        r = solve_exact_auto(ws, ps, cap)
        assert r.value == pytest.approx(brute_force(ws, ps, cap), abs=1e-6)


class TestGreedy:
    def test_half_guarantee_worst_case(self):
        # the classic adversarial case: greedy takes 1+eps, optimal is 2
        w = [1.01, 1.0, 1.0]
        r = solve_greedy(w, w, 2.0)
        assert r.value >= 0.5 * 2.0

    @settings(max_examples=150, deadline=None)
    @given(small_instances)
    def test_half_guarantee(self, inst):
        ws, ps, cap = inst
        opt = brute_force(ws, ps, cap)
        r = solve_greedy(ws, ps, cap)
        r.verify(ws, ps, cap)
        assert r.value >= 0.5 * opt - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(small_instances)
    def test_never_beats_optimum(self, inst):
        ws, ps, cap = inst
        assert solve_greedy(ws, ps, cap).value <= brute_force(ws, ps, cap) + 1e-9

    def test_empty(self):
        assert solve_greedy([], [], 3.0).value == 0.0

    def test_best_single_item_beats_prefix(self):
        # density greedy fills with small items; one huge-profit item wins
        w = [1.0, 1.0, 10.0]
        p = [2.0, 2.0, 15.0]
        r = solve_greedy(w, p, 10.0)
        assert r.value == 15.0

    def test_by_weight_variant_feasible(self):
        w = [3.0, 1.0, 2.0]
        r = solve_greedy_by_weight(w, w, 3.5)
        r.verify(w, w, 3.5)
        assert r.value == pytest.approx(3.0)  # takes 1 then 2


class TestFptas:
    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.1, 0.05])
    def test_guarantee_on_adversarial(self, eps):
        w = [1.01, 1.0, 1.0]
        r = solve_fptas(w, w, 2.0, eps=eps)
        assert r.value >= (1 - eps) * 2.0 - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(small_instances, st.sampled_from([0.5, 0.2, 0.1]))
    def test_guarantee(self, inst, eps):
        ws, ps, cap = inst
        opt = brute_force(ws, ps, cap)
        r = solve_fptas(ws, ps, cap, eps=eps)
        r.verify(ws, ps, cap)
        assert r.value >= (1 - eps) * opt - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(small_instances)
    def test_never_beats_optimum(self, inst):
        ws, ps, cap = inst
        opt = brute_force(ws, ps, cap)
        assert solve_fptas(ws, ps, cap, eps=0.3).value <= opt + 1e-9

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            solve_fptas([1.0], [1.0], 1.0, eps=0.0)
        with pytest.raises(ValueError):
            solve_fptas([1.0], [1.0], 1.0, eps=1.0)

    def test_empty(self):
        assert solve_fptas([], [], 1.0, eps=0.1).value == 0.0

    def test_small_eps_is_exact_on_small_instances(self):
        w = [3, 5, 7, 2]
        r = solve_fptas(w, w, 10, eps=0.01)
        assert r.value == pytest.approx(10.0)


class TestFractional:
    def test_fills_capacity_exactly(self):
        res = solve_fractional([4.0, 4.0], [4.0, 4.0], 6.0)
        assert res.weight == pytest.approx(6.0)
        assert res.value == pytest.approx(6.0)
        assert res.split_item is not None

    def test_at_most_one_split_item(self):
        res = solve_fractional([1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0], 5.0)
        partial = ((res.fractions > 1e-12) & (res.fractions < 1 - 1e-12)).sum()
        assert partial <= 1

    def test_zero_weight_items_taken(self):
        res = solve_fractional([0.0, 1.0], [5.0, 1.0], 0.0)
        assert res.value == pytest.approx(5.0)
        assert res.integral_support.tolist() == [0]

    @settings(max_examples=100, deadline=None)
    @given(small_instances)
    def test_upper_bounds_integral_opt(self, inst):
        ws, ps, cap = inst
        opt = brute_force(ws, ps, cap)
        assert fractional_upper_bound(ws, ps, cap) >= opt - 1e-9

    @settings(max_examples=100, deadline=None)
    @given(small_instances)
    def test_fractions_valid(self, inst):
        ws, ps, cap = inst
        res = solve_fractional(ws, ps, cap)
        assert (res.fractions >= -1e-12).all()
        assert (res.fractions <= 1 + 1e-12).all()
        heavy_weight = float(
            (np.asarray(ws) * res.fractions).sum()
        )
        assert heavy_weight <= cap + 1e-6 or np.isclose(res.fractions.max(), 0)

    def test_empty(self):
        res = solve_fractional([], [], 1.0)
        assert res.value == 0.0
        assert isinstance(res, FractionalResult)


class TestRegistry:
    def test_names(self):
        assert set(KNAPSACK_SOLVERS) == {"exact", "fptas", "greedy"}

    def test_get_solver(self):
        assert get_solver("exact").guarantee == 1.0
        assert get_solver("greedy").guarantee == 0.5
        assert get_solver("fptas", eps=0.2).guarantee == pytest.approx(0.8)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            get_solver("nope")

    def test_fptas_eps_validated(self):
        with pytest.raises(ValueError):
            get_solver("fptas", eps=2.0)

    @pytest.mark.parametrize("name", ["exact", "fptas", "greedy"])
    def test_solvers_run(self, name):
        s = get_solver(name)
        w = [1.0, 2.0, 3.0]
        r = s.solve(w, w, 4.0)
        r.verify(w, w, 4.0)
        assert r.value >= s.guarantee * 4.0 - 1e-9


class TestProfitDp:
    def test_basic(self):
        from repro.knapsack import solve_exact_by_profit

        w, p, c = [1.5, 2.5, 3.5], [2.0, 3.0, 4.0], 4.5
        r = solve_exact_by_profit(w, p, c)
        r.verify(w, p, c)
        assert r.value == pytest.approx(brute_force(w, p, c))

    def test_rejects_fractional_profits(self):
        from repro.knapsack import solve_exact_by_profit

        with pytest.raises(ValueError):
            solve_exact_by_profit([1.0], [1.5], 2.0)

    def test_empty_and_nothing_fits(self):
        from repro.knapsack import solve_exact_by_profit

        assert solve_exact_by_profit([], [], 1.0).value == 0.0
        assert solve_exact_by_profit([5.0], [1.0], 2.0).value == 0.0

    @settings(max_examples=80, deadline=None)
    @given(small_instances, st.randoms(use_true_random=False))
    def test_matches_brute_force(self, inst, rnd):
        from repro.knapsack import solve_exact_by_profit

        ws, _, cap = inst
        ps = [float(rnd.randint(1, 9)) for _ in ws]
        r = solve_exact_by_profit(ws, ps, cap)
        r.verify(ws, ps, cap)
        assert r.value == pytest.approx(brute_force(ws, ps, cap), abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(small_instances, st.randoms(use_true_random=False))
    def test_agrees_with_branch_and_bound(self, inst, rnd):
        from repro.knapsack import solve_exact_by_profit

        ws, _, cap = inst
        ps = [float(rnd.randint(1, 9)) for _ in ws]
        a = solve_exact_by_profit(ws, ps, cap).value
        b = solve_branch_and_bound(ws, ps, cap).value
        assert a == pytest.approx(b, abs=1e-6)

    def test_auto_dispatches_profit_dp(self):
        # float weights + integral profits: auto should still be exact
        w = [1.3, 2.7, 3.1, 0.9]
        p = [2.0, 3.0, 5.0, 1.0]
        r = solve_exact_auto(w, p, 4.1)
        assert r.value == pytest.approx(brute_force(w, p, 4.1))
