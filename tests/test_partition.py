"""Tests for the partition–solve–merge engine layer (docs/SCALE.md).

Covers the decomposition primitives (``repro.engine.partition``), the
planner's partition auto rule, the engine strategy seam, and the
certified merge bound ``V_mono <= V_part + merge_bound`` — asserted as a
hypothesis property across every partitionable spec, including the
single-partition degenerate case.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import (
    SolveRequest,
    clear_caches,
    get_spec,
    merge_partial_solutions,
    partition_instance,
    plan_partition,
    reach_components,
    solve,
    specs,
)
from repro.engine.planner import AUTO_PARTITION_MIN_N
from repro.model.antenna import AntennaSpec
from repro.model.generators import power_law_metro
from repro.model.instance import SectorInstance, Station
from repro.obs.metrics import get_registry

PARTITIONABLE = tuple(s.name for s in specs("sector") if s.partitionable)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _station(x, y, radius=2.0, capacity=50.0, antennas=2):
    return Station(
        position=(x, y),
        antennas=tuple(
            AntennaSpec(rho=np.pi / 2, capacity=capacity, radius=radius)
            for _ in range(antennas)
        ),
    )


def _two_island_instance():
    """Two stations far apart, one customer near each, one unreachable."""
    positions = np.array([[0.5, 0.0], [100.5, 0.0], [50.0, 50.0]])
    demands = np.array([1.0, 1.0, 1.0])
    profits = np.array([3.0, 5.0, 7.0])
    stations = (_station(0.0, 0.0), _station(100.0, 0.0))
    return SectorInstance(
        positions=positions, demands=demands, profits=profits,
        stations=stations,
    )


class TestReachComponents:
    def test_separated_stations_split(self):
        inst = _two_island_instance()
        comp = reach_components(inst)
        assert comp.shape == (2,)
        assert comp[0] != comp[1]

    def test_overlapping_stations_merge(self):
        inst = SectorInstance(
            positions=np.array([[1.0, 0.0]]),
            demands=np.array([1.0]),
            stations=(_station(0.0, 0.0), _station(3.0, 0.0)),
        )
        assert reach_components(inst)[0] == reach_components(inst)[1]

    def test_touching_radii_are_one_component(self):
        # dist == R_s + R_t exactly: the slack keeps them adjacent, in
        # agreement with the instance-level reach predicate at the rim.
        inst = SectorInstance(
            positions=np.array([[2.0, 0.0]]),
            demands=np.array([1.0]),
            stations=(_station(0.0, 0.0), _station(4.0, 0.0)),
        )
        comp = reach_components(inst)
        assert comp[0] == comp[1]

    def test_metro_components_equal_towns(self):
        inst = power_law_metro(n=500, towns=4, seed=1)
        comp = reach_components(inst)
        assert len(set(comp.tolist())) == 4


class TestPartitionInstance:
    def test_two_islands(self):
        inst = _two_island_instance()
        plan = partition_instance(inst)
        assert len(plan.parts) == 2
        assert plan.unreachable == 1
        # Every reachable customer lands in exactly one part, remapped.
        covered = np.concatenate([p.customer_index for p in plan.parts])
        assert sorted(covered.tolist()) == [0, 1]
        for part in plan.parts:
            np.testing.assert_allclose(
                part.sub.profits, inst.profits[part.customer_index]
            )

    def test_subs_are_views_not_copies(self):
        inst = power_law_metro(n=2000, towns=3, seed=0)
        plan = partition_instance(inst)
        assert plan.parts
        for part in plan.parts:
            assert part.sub.positions.base is not None
            assert part.sub.demands.base is not None
            assert not part.sub.demands.flags.writeable

    def test_single_component_degenerate(self):
        inst = power_law_metro(n=300, towns=1, seed=2)
        plan = partition_instance(inst)
        assert len(plan.parts) == 1
        part = plan.parts[0]
        assert part.sub.n + plan.unreachable == inst.n
        assert part.sub.total_antennas == inst.total_antennas

    def test_upper_bound_sums_parts(self):
        plan = partition_instance(_two_island_instance())
        assert plan.upper_bound == pytest.approx(
            sum(p.upper_bound for p in plan.parts)
        )

    def test_counters_and_timer(self):
        registry = get_registry()
        registry.reset()
        partition_instance(_two_island_instance())
        snap = registry.snapshot()
        assert snap["engine.partition.parts"]["value"] == 2
        assert snap["engine.partition.unreachable"]["value"] == 1
        assert snap["phase.partition"]["count"] == 1


class TestMerge:
    def test_merge_remaps_and_verifies(self):
        inst = _two_island_instance()
        plan = partition_instance(inst)
        solutions = []
        for part in plan.parts:
            report = solve(SolveRequest(
                instance=part.sub, family="sector", algorithm="greedy",
                partition="never", use_cache=False, eps=0.5,
            ))
            solutions.append(report.solution)
        merged = merge_partial_solutions(plan, solutions)
        merged.verify(inst)
        assert merged.value(inst) == pytest.approx(
            sum(s.value(p.sub) for p, s in zip(plan.parts, solutions))
        )
        # The unreachable customer stays unassigned.
        assert merged.assignment[2] == -1

    def test_merge_rejects_wrong_count(self):
        plan = partition_instance(_two_island_instance())
        with pytest.raises(ValueError):
            merge_partial_solutions(plan, [])


class TestPlanPartition:
    def test_force_partitionable(self):
        assert plan_partition("force", True, 10, stations=1) == (
            "partitioned", False,
        )

    def test_force_falls_back_on_incapable_spec(self):
        assert plan_partition("force", False, 10**6, stations=9) == (
            "monolithic", True,
        )

    def test_never(self):
        assert plan_partition("never", True, 10**7, stations=9) == (
            "monolithic", False,
        )

    def test_auto_needs_size_stations_and_capability(self):
        big = AUTO_PARTITION_MIN_N
        assert plan_partition("auto", True, big, stations=4)[0] == "partitioned"
        assert plan_partition("auto", True, big - 1, stations=4)[0] == "monolithic"
        assert plan_partition("auto", True, big, stations=1)[0] == "monolithic"
        assert plan_partition("auto", False, big, stations=4)[0] == "monolithic"

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            plan_partition("sometimes", True, 10)

    def test_registry_partitionable_column(self):
        assert set(PARTITIONABLE) == {"greedy", "greedy+ls", "independent"}
        assert not get_spec("sector", "exact").partitionable
        for spec in specs("angle"):
            assert not spec.partitionable


class TestEngineIntegration:
    def test_forced_partition_matches_monolithic(self):
        inst = power_law_metro(n=3000, towns=4, seed=0)
        mono = solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="never", use_cache=False, eps=0.5,
        ))
        part = solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="force", use_cache=False, eps=0.5,
        ))
        assert part.extra["strategy"] == "partitioned"
        assert part.extra["partitions"] == 4
        assert part.extra["merge_bound"] >= 0.0
        assert mono.value <= part.value + part.extra["merge_bound"] + 1e-9
        # Dropping unreachable customers never changes what greedy can
        # serve, so the strategies agree exactly on this family.
        assert mono.value == pytest.approx(part.value)
        part.solution.verify(inst)

    def test_partitioned_solution_feasible_and_certified(self):
        inst = power_law_metro(n=1500, towns=2, seed=3)
        report = solve(SolveRequest(
            instance=inst, family="sector", algorithm="independent",
            partition="force", use_cache=False, eps=0.5,
        ))
        report.solution.verify(inst)
        assert report.value <= report.extra["partition_upper_bound"] + 1e-9

    def test_partitioned_bypasses_result_cache(self):
        clear_caches()
        inst = power_law_metro(n=1500, towns=2, seed=4)
        request = SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="force", use_cache=True, eps=0.5,
        )
        first = solve(request)
        second = solve(request)
        assert not first.cached and not second.cached
        # The identical monolithic request must not see a partitioned
        # entry either: strategies answer differently, so the cache only
        # serves the monolithic path.
        mono = solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="never", use_cache=True, eps=0.5,
        ))
        assert not mono.cached

    def test_strategy_counters(self):
        registry = get_registry()
        inst = power_law_metro(n=800, towns=2, seed=5)
        registry.reset()
        solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="force", use_cache=False, eps=0.5,
        ))
        solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="never", use_cache=False, eps=0.5,
        ))
        # The exact sector spec is not partitionable: an explicit force
        # must fall back to monolithic (tiny instance — it enumerates).
        solve(SolveRequest(
            instance=_two_island_instance(), family="sector",
            algorithm="exact", partition="force", use_cache=False, eps=0.5,
        ))
        snap = registry.snapshot()
        assert snap["engine.partition.partitioned"]["value"] == 1
        # The partitioned solve's two per-part child solves re-enter the
        # seam with partition="never", so they count as monolithic too:
        # 2 children + the explicit "never" solve + the exact fallback.
        assert snap["engine.partition.monolithic"]["value"] == 4
        assert snap["engine.partition.fallback"]["value"] == 1

    def test_force_on_angle_family_falls_back(self):
        from repro.model.generators import uniform_angles

        inst = uniform_angles(n=12, k=2, seed=0)
        report = solve(SolveRequest(
            instance=inst, family="angle", algorithm="greedy",
            partition="force", use_cache=False, eps=0.5,
        ))
        assert report.error is None
        assert report.extra.get("strategy") != "partitioned"


class TestMergeBoundProperty:
    """``V_mono <= V_part + merge_bound`` across all partitionable specs."""

    @SLOW
    @given(
        algorithm=st.sampled_from(PARTITIONABLE),
        towns=st.integers(min_value=1, max_value=3),
        n=st.integers(min_value=30, max_value=120),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_certified_merge_bound(self, algorithm, towns, n, seed):
        inst = power_law_metro(n=n, towns=towns, seed=seed)
        mono = solve(SolveRequest(
            instance=inst, family="sector", algorithm=algorithm,
            partition="never", use_cache=False, eps=0.5,
        ))
        part = solve(SolveRequest(
            instance=inst, family="sector", algorithm=algorithm,
            partition="force", use_cache=False, eps=0.5,
        ))
        bound = part.extra["merge_bound"]
        assert bound >= 0.0
        assert mono.value <= part.value + bound + 1e-9
        part.solution.verify(inst)

    @SLOW
    @given(
        algorithm=st.sampled_from(PARTITIONABLE),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_single_partition_degenerate(self, algorithm, seed):
        # One town -> one reach component: partitioned solve == monolithic
        # on the same sub-problem, so the values agree exactly.
        inst = power_law_metro(n=80, towns=1, seed=seed)
        mono = solve(SolveRequest(
            instance=inst, family="sector", algorithm=algorithm,
            partition="never", use_cache=False, eps=0.5,
        ))
        part = solve(SolveRequest(
            instance=inst, family="sector", algorithm=algorithm,
            partition="force", use_cache=False, eps=0.5,
        ))
        assert part.extra["partitions"] == 1
        assert part.value == pytest.approx(mono.value)


class TestScale:
    @pytest.mark.slow
    def test_partitioned_matches_monolithic_at_scale(self):
        # n >= 1e5: excluded from tier-1 (pyproject deselects `slow`);
        # scripts/smoke.sh runs this one case explicitly.
        inst = power_law_metro(n=100_000, towns=8, seed=0)
        mono = solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="never", use_cache=False, eps=0.5,
        ))
        part = solve(SolveRequest(
            instance=inst, family="sector", algorithm="greedy",
            partition="auto", use_cache=False, eps=0.5,
        ))
        assert part.extra["strategy"] == "partitioned"
        assert part.extra["partitions"] == 8
        assert mono.value <= part.value + part.extra["merge_bound"] + 1e-9
        assert mono.value == pytest.approx(part.value)
