"""Tests for CircularIntervalSet, validated against point sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.geometry.arcs import Arc, union_measure
from repro.geometry.interval_set import CircularIntervalSet

arc_lists = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=TWO_PI - 1e-9),
        st.floats(min_value=0.0, max_value=TWO_PI),
    ),
    max_size=8,
)


class TestBasics:
    def test_empty(self):
        s = CircularIntervalSet()
        assert s.measure() == 0.0
        assert not s.contains(1.0)
        assert len(s) == 0
        assert s.gaps()[0].is_full_circle

    def test_single_arc(self):
        s = CircularIntervalSet([Arc(1.0, 0.5)])
        assert s.measure() == pytest.approx(0.5)
        assert s.contains(1.2)
        assert not s.contains(2.0)

    def test_full_circle(self):
        s = CircularIntervalSet([Arc(0.0, TWO_PI)])
        assert s.is_full
        assert s.measure() == pytest.approx(TWO_PI)
        assert s.gaps() == []
        assert s.largest_gap() == 0.0

    def test_zero_width_ignored(self):
        s = CircularIntervalSet([Arc(1.0, 0.0)])
        assert s.measure() == 0.0

    def test_disjoint_arcs_kept_separate(self):
        s = CircularIntervalSet([Arc(0.0, 1.0), Arc(2.0, 1.0)])
        assert len(s) == 2
        assert s.measure() == pytest.approx(2.0)

    def test_touching_arcs_merge(self):
        s = CircularIntervalSet([Arc(0.0, 1.0), Arc(1.0, 1.0)])
        assert len(s) == 1
        assert s.measure() == pytest.approx(2.0)

    def test_overlapping_merge(self):
        s = CircularIntervalSet([Arc(0.0, 1.5), Arc(1.0, 1.0)])
        assert len(s) == 1
        assert s.measure() == pytest.approx(2.0)

    def test_wrap_merge(self):
        s = CircularIntervalSet([Arc(TWO_PI - 0.5, 1.0), Arc(0.4, 0.5)])
        assert s.measure() == pytest.approx(1.4, abs=1e-9)

    def test_chain_merge_to_full(self):
        s = CircularIntervalSet()
        for k in range(4):
            s.add(Arc(k * TWO_PI / 4, TWO_PI / 4 + 0.01))
        assert s.is_full


class TestAgainstUnionMeasure:
    @settings(max_examples=200)
    @given(arc_lists)
    def test_measure_matches_union_measure(self, parts):
        arcs = [Arc(a, w) for a, w in parts]
        s = CircularIntervalSet(arcs)
        assert s.measure() == pytest.approx(union_measure(arcs), abs=1e-6)

    @settings(max_examples=150)
    @given(arc_lists, st.floats(min_value=0, max_value=TWO_PI - 1e-9))
    def test_contains_matches_any_arc(self, parts, theta):
        arcs = [Arc(a, w) for a, w in parts]
        s = CircularIntervalSet(arcs)
        # zero-width arcs carry no measure and are ignored by the set
        expected = any(a.contains(theta) for a in arcs if a.width > 0)
        if expected:
            assert s.contains(theta)
        # (a merged set may also contain boundary-tolerance points that no
        # single arc reports, so the reverse direction only holds away from
        # endpoints; tested separately below)

    @settings(max_examples=150)
    @given(arc_lists)
    def test_gap_points_are_outside_all_arcs(self, parts):
        arcs = [Arc(a, w) for a, w in parts]
        s = CircularIntervalSet(arcs)
        for g in s.gaps():
            mid = g.sample_angles(1)[0]
            if g.width > 1e-6:
                for a in arcs:
                    assert not a.contains(float(mid) )or a.width == 0.0

    @settings(max_examples=100)
    @given(arc_lists)
    def test_gaps_and_measure_complement(self, parts):
        arcs = [Arc(a, w) for a, w in parts]
        s = CircularIntervalSet(arcs)
        if not s.is_full:
            gap_total = sum(g.width for g in s.gaps())
            assert gap_total + s.measure() == pytest.approx(TWO_PI, abs=1e-6)


class TestIsFree:
    def test_free_in_gap(self):
        s = CircularIntervalSet([Arc(0.0, 1.0)])
        assert s.is_free(Arc(2.0, 1.0))

    def test_not_free_overlapping(self):
        s = CircularIntervalSet([Arc(0.0, 1.0)])
        assert not s.is_free(Arc(0.5, 1.0))

    def test_touching_is_free(self):
        s = CircularIntervalSet([Arc(0.0, 1.0)])
        assert s.is_free(Arc(1.0, 1.0))

    def test_nothing_free_when_full(self):
        s = CircularIntervalSet([Arc(0.0, TWO_PI)])
        assert not s.is_free(Arc(0.0, 0.1))
        assert s.is_free(Arc(0.0, 0.0))

    @settings(max_examples=100)
    @given(arc_lists,
           st.floats(min_value=0, max_value=TWO_PI - 1e-9),
           st.floats(min_value=0.01, max_value=2.0))
    def test_free_arc_interior_disjoint_from_all(self, parts, start, width):
        arcs = [Arc(a, w) for a, w in parts]
        s = CircularIntervalSet(arcs)
        probe = Arc(start, width)
        if s.is_free(probe):
            for a in arcs:
                assert not probe.overlaps_interior(a) or a.width <= 1e-9


class TestGaps:
    def test_single_arc_gap(self):
        s = CircularIntervalSet([Arc(1.0, 2.0)])
        gaps = s.gaps()
        assert len(gaps) == 1
        assert gaps[0].start == pytest.approx(3.0)
        assert gaps[0].width == pytest.approx(TWO_PI - 2.0)

    def test_two_arcs_two_gaps(self):
        s = CircularIntervalSet([Arc(0.0, 1.0), Arc(3.0, 1.0)])
        gaps = s.gaps()
        assert len(gaps) == 2
        assert s.largest_gap() == pytest.approx(TWO_PI - 4.0, abs=1e-9)
