"""Tests for the process-pool layer (repro.parallel)."""

import os

import pytest

from repro.parallel import parallel_map, scatter_gather, worker_count
from repro.parallel.pool import _is_picklable


def square(x):
    return x * x


def chunk_sum(chunk):
    return sum(chunk)


class TestWorkerCount:
    def test_explicit_wins(self):
        assert worker_count(3) == 3

    def test_explicit_clamped_to_one(self):
        assert worker_count(0) == 1
        assert worker_count(-5) == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert worker_count() == 2

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError):
            worker_count()

    def test_default_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() >= 1


class TestParallelMap:
    def test_order_preserved_serial(self):
        assert parallel_map(square, range(10), workers=1) == [x * x for x in range(10)]

    def test_order_preserved_parallel(self):
        items = list(range(50))
        assert parallel_map(square, items, workers=2) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(square, [], workers=2) == []

    def test_small_input_stays_serial(self):
        # 2 items < threshold: must work even with many workers requested
        assert parallel_map(square, [1, 2], workers=8) == [1, 4]

    def test_unpicklable_falls_back(self):
        closure_val = 10
        fn = lambda x: x + closure_val  # noqa: E731 - deliberately a lambda
        out = parallel_map(fn, list(range(20)), workers=2)
        assert out == [x + 10 for x in range(20)]

    def test_chunk_size_respected(self):
        items = list(range(30))
        out = parallel_map(square, items, workers=2, chunk_size=7)
        assert out == [x * x for x in items]


class TestScatterGather:
    def test_basic(self):
        chunks = [[1, 2], [3, 4], [5]]
        assert scatter_gather(chunk_sum, chunks, workers=2) == [3, 7, 5]

    def test_single_chunk_serial(self):
        assert scatter_gather(chunk_sum, [[1, 2, 3]], workers=4) == [6]

    def test_serial_fallback(self):
        chunks = [[1], [2], [3]]
        assert scatter_gather(chunk_sum, chunks, workers=1) == [1, 2, 3]


class TestPicklable:
    def test_module_function_picklable(self):
        assert _is_picklable(square)

    def test_lambda_not_picklable(self):
        assert not _is_picklable(lambda x: x)
