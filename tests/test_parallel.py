"""Tests for the process-pool layer (repro.parallel)."""

import os
import time

import pytest

from repro.obs.metrics import get_registry
from repro.parallel import parallel_map, scatter_gather, worker_count
from repro.parallel.pool import _is_picklable
from repro.resilience import ChaosPolicy


def square(x):
    return x * x


def chunk_sum(chunk):
    return sum(chunk)


def slow_chunk_sum(chunk):
    time.sleep(0.25)
    return sum(chunk)


def failing_chunk_sum(chunk):
    raise RuntimeError("this chunk always fails")


# Chaos-wrapped workers: deterministic by seed, and only misbehave inside
# worker processes (the parent's serial retry always runs clean).
KILLER = ChaosPolicy(seed=11, kill_rate=0.4).wrap(square)
ERRORER = ChaosPolicy(seed=12, error_rate=0.5).wrap(square)


class TestWorkerCount:
    def test_explicit_wins(self):
        assert worker_count(3) == 3

    def test_explicit_beats_env(self, monkeypatch):
        # An explicit argument is the caller's decision; the env var is
        # only the *default* — reproducibility contract in docs/SCALE.md.
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert worker_count(3) == 3

    def test_explicit_clamped_to_one(self):
        assert worker_count(0) == 1
        assert worker_count(-5) == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert worker_count() == 2

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError):
            worker_count()

    def test_default_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() >= 1


class TestParallelMap:
    def test_order_preserved_serial(self):
        assert parallel_map(square, range(10), workers=1) == [x * x for x in range(10)]

    def test_order_preserved_parallel(self):
        items = list(range(50))
        assert parallel_map(square, items, workers=2) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(square, [], workers=2) == []

    def test_small_input_stays_serial(self):
        # 2 items < threshold: must work even with many workers requested
        assert parallel_map(square, [1, 2], workers=8) == [1, 4]

    def test_unpicklable_falls_back(self):
        closure_val = 10
        fn = lambda x: x + closure_val  # noqa: E731 - deliberately a lambda
        out = parallel_map(fn, list(range(20)), workers=2)
        assert out == [x + 10 for x in range(20)]

    def test_chunk_size_respected(self):
        items = list(range(30))
        out = parallel_map(square, items, workers=2, chunk_size=7)
        assert out == [x * x for x in items]


class TestScatterGather:
    def test_basic(self):
        chunks = [[1, 2], [3, 4], [5]]
        assert scatter_gather(chunk_sum, chunks, workers=2) == [3, 7, 5]

    def test_single_chunk_serial(self):
        assert scatter_gather(chunk_sum, [[1, 2, 3]], workers=4) == [6]

    def test_serial_fallback(self):
        chunks = [[1], [2], [3]]
        assert scatter_gather(chunk_sum, chunks, workers=1) == [1, 2, 3]


class TestCrashRecovery:
    def test_worker_kill_recovered_serially(self):
        # Workers die mid-chunk (os._exit) on a seeded schedule; the pool
        # must still return every result, via serial parent re-runs.
        reg = get_registry()
        reg.reset()
        items = list(range(40))
        out = parallel_map(KILLER, items, workers=2, chunk_size=5)
        assert out == [x * x for x in items]
        snap = reg.snapshot()
        assert snap["parallel.worker_failures"]["value"] >= 1
        assert snap["parallel.serial_retries"]["value"] >= 1

    def test_worker_error_recovered_serially(self):
        items = list(range(40))
        out = parallel_map(ERRORER, items, workers=2, chunk_size=5)
        assert out == [x * x for x in items]

    def test_chunk_timeout_recovered_serially(self):
        reg = get_registry()
        reg.reset()
        chunks = [[1, 2], [3, 4], [5, 6]]
        out = scatter_gather(slow_chunk_sum, chunks, workers=2,
                             chunk_timeout_s=0.01)
        assert out == [3, 7, 11]
        assert reg.snapshot()["parallel.chunk_timeouts"]["value"] >= 1

    def test_permanent_failure_raises_by_default(self):
        with pytest.raises(RuntimeError):
            scatter_gather(failing_chunk_sum, [[1], [2], [3]], workers=2)

    def test_allow_partial_yields_none_slots(self):
        reg = get_registry()
        reg.reset()
        chunks = [[1], [2], [3]]
        out = scatter_gather(failing_chunk_sum, chunks, workers=2,
                             allow_partial=True)
        assert out == [None, None, None]
        assert reg.snapshot()["parallel.failed_chunks"]["value"] == 3

    def test_allow_partial_serial_path(self):
        out = scatter_gather(failing_chunk_sum, [[1], [2]], workers=1,
                             allow_partial=True)
        assert out == [None, None]


class TestPicklable:
    def test_module_function_picklable(self):
        assert _is_picklable(square)

    def test_lambda_not_picklable(self):
        assert not _is_picklable(lambda x: x)
