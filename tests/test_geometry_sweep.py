"""Tests for the circular sweep (repro.geometry.sweep).

The sweep is the backbone of every solver, so it is tested against a
brute-force reference implementation on random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI, angles_in_window
from repro.geometry.sweep import CircularSweep

angle_lists = st.lists(
    st.floats(min_value=0.0, max_value=TWO_PI - 1e-9, allow_nan=False),
    min_size=0,
    max_size=40,
)
widths = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False)


def brute_force_covered(thetas, start, width):
    """Reference: original indices covered by [start, start+width]."""
    mask = angles_in_window(np.asarray(thetas), start, width)
    return set(np.flatnonzero(mask).tolist())


class TestSweepConstruction:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            CircularSweep([0.0], -0.1)
        with pytest.raises(ValueError):
            CircularSweep([0.0], TWO_PI + 0.1)

    def test_empty_instance(self):
        sw = CircularSweep([], 1.0)
        assert sw.n == 0
        assert list(sw.windows()) == []
        assert sw.counts().size == 0

    def test_window_index_bounds(self):
        sw = CircularSweep([0.0, 1.0], 0.5)
        with pytest.raises(IndexError):
            sw.window(2)
        with pytest.raises(IndexError):
            sw.window(-1)


class TestWindowCoverage:
    def test_simple(self):
        thetas = [0.0, 0.5, 1.0, 3.0]
        sw = CircularSweep(thetas, 1.0)
        w = sw.window(0)  # starts at angle 0.0
        assert set(w.indices.tolist()) == {0, 1, 2}

    def test_wraparound_window(self):
        thetas = [0.1, 3.0, TWO_PI - 0.2]
        sw = CircularSweep(thetas, 0.5)
        # window starting at the largest angle wraps and grabs 0.1
        w = sw.window(2)
        assert set(w.indices.tolist()) == {2, 0}

    def test_full_circle_covers_all(self):
        thetas = np.linspace(0, TWO_PI, 10, endpoint=False)
        sw = CircularSweep(thetas, TWO_PI)
        for w in sw.windows():
            assert w.count == 10

    def test_zero_width_covers_only_duplicates(self):
        thetas = [1.0, 1.0, 2.0]
        sw = CircularSweep(thetas, 0.0)
        w = sw.window(0)
        assert set(w.indices.tolist()) == {0, 1}

    @settings(max_examples=200)
    @given(angle_lists, widths)
    def test_matches_brute_force(self, thetas, width):
        sw = CircularSweep(thetas, width)
        for w in sw.windows():
            got = set(w.indices.tolist())
            expected = brute_force_covered(thetas, w.start, width)
            assert got == expected

    @given(angle_lists, widths)
    def test_counts_match_windows(self, thetas, width):
        sw = CircularSweep(thetas, width)
        counts = sw.counts()
        for k, w in enumerate(sw.windows()):
            assert counts[k] == w.count

    @given(angle_lists, widths)
    def test_covers_original_agrees_with_indices(self, thetas, width):
        sw = CircularSweep(thetas, width)
        for w in sw.windows():
            members = set(w.indices.tolist())
            for i in range(sw.n):
                assert w.covers_original(i) == (i in members)


class TestWindowSums:
    def test_shape_validation(self):
        sw = CircularSweep([0.0, 1.0], 0.5)
        with pytest.raises(ValueError):
            sw.window_sums(np.ones(3))

    @settings(max_examples=150)
    @given(angle_lists, widths, st.randoms(use_true_random=False))
    def test_matches_explicit_sum(self, thetas, width, rnd):
        values = np.array([rnd.uniform(0, 10) for _ in thetas])
        sw = CircularSweep(thetas, width)
        sums = sw.window_sums(values)
        for k, w in enumerate(sw.windows()):
            assert sums[k] == pytest.approx(values[w.indices].sum(), abs=1e-9)

    def test_best_window(self):
        thetas = [0.0, 0.1, 3.0]
        values = np.array([1.0, 2.0, 10.0])
        sw = CircularSweep(thetas, 0.5)
        k, v = sw.best_window_by_sum(values)
        assert v == pytest.approx(10.0)
        assert sw.window(k).covers_original(2)

    def test_best_window_empty_raises(self):
        sw = CircularSweep([], 0.5)
        with pytest.raises(ValueError):
            sw.best_window_by_sum(np.empty(0))


class TestUniqueWindows:
    def test_duplicates_removed(self):
        thetas = [1.0, 1.0, 2.0]
        sw = CircularSweep(thetas, 0.5)
        ids = sw.unique_window_ids()
        assert len(ids) == 2

    def test_no_duplicates_keeps_all(self):
        sw = CircularSweep([0.0, 1.0, 2.0], 0.5)
        assert len(sw.unique_window_ids()) == 3

    @given(angle_lists, widths)
    def test_unique_ids_cover_all_distinct_coverages(self, thetas, width):
        sw = CircularSweep(thetas, width)
        all_cov = {frozenset(w.indices.tolist()) for w in sw.windows()}
        uniq_cov = {
            frozenset(sw.window(int(k)).indices.tolist())
            for k in sw.unique_window_ids()
        }
        assert uniq_cov == all_cov


class TestWindowAt:
    """Direct tests for arbitrary-start windows (closed and half-open)."""

    @settings(max_examples=150)
    @given(
        angle_lists,
        widths,
        st.floats(min_value=0.0, max_value=TWO_PI - 1e-9),
    )
    def test_closed_matches_brute_force(self, thetas, width, start):
        sw = CircularSweep(thetas, width)
        w = sw.window_at(start)
        got = set(w.indices.tolist())
        expected = brute_force_covered(thetas, start, width)
        assert got == expected

    @settings(max_examples=100)
    @given(
        angle_lists,
        st.floats(min_value=0.01, max_value=TWO_PI - 1e-6),
        st.floats(min_value=0.0, max_value=TWO_PI - 1e-9),
    )
    def test_half_open_subset_of_closed(self, thetas, width, start):
        sw = CircularSweep(thetas, width)
        closed = set(sw.window_at(start).indices.tolist())
        half = set(sw.window_at(start, closed_end=False).indices.tolist())
        assert half <= closed

    def test_half_open_excludes_exact_end(self):
        sw = CircularSweep([0.0, 1.0], 1.0)
        closed = sw.window_at(0.0)
        half = sw.window_at(0.0, closed_end=False)
        assert set(closed.indices.tolist()) == {0, 1}
        assert set(half.indices.tolist()) == {0}

    def test_empty_sweep(self):
        sw = CircularSweep([], 1.0)
        w = sw.window_at(0.5)
        assert w.count == 0

    def test_start_beyond_all_angles_wraps(self):
        sw = CircularSweep([0.1], 0.5)
        w = sw.window_at(TWO_PI - 0.2)
        assert set(w.indices.tolist()) == {0}
