"""Cross-cutting property tests: invariants every solver must satisfy.

Hypothesis generates whole instances; each property runs the full solver
suite and checks relations that must hold regardless of the data:

* every returned solution verifies (feasibility is non-negotiable);
* no solver beats any certified upper bound;
* exact >= FPTAS-oracle >= nothing (ordering within oracle tiers);
* local search is monotone; DP output is disjoint; splittable >= integral;
* serialization round-trips preserve solution values.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model.serialization import solution_from_dict, solution_to_dict
from repro.packing.bounds import combined_upper_bound
from repro.packing.exact import solve_exact_angle
from repro.packing.flow import splittable_value
from repro.packing.local_search import improve_solution
from repro.packing.lp import lp_upper_bound
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.shifting import solve_shifting

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")
FPTAS = get_solver("fptas", eps=0.2)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def angle_instances(draw, max_n=10, max_k=3, uniform=True):
    n = draw(st.integers(min_value=1, max_value=max_n))
    k = draw(st.integers(min_value=1, max_value=max_k))
    thetas = draw(
        st.lists(
            st.floats(min_value=0, max_value=TWO_PI - 1e-9),
            min_size=n, max_size=n,
        )
    )
    demands = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=3.0), min_size=n, max_size=n
        )
    )
    rho = draw(st.floats(min_value=0.2, max_value=TWO_PI))
    cap_frac = draw(st.floats(min_value=0.15, max_value=1.2))
    cap = max(cap_frac * sum(demands), 0.2)
    if uniform:
        antennas = tuple(AntennaSpec(rho=rho, capacity=cap) for _ in range(k))
    else:
        antennas = tuple(
            AntennaSpec(
                rho=draw(st.floats(min_value=0.2, max_value=TWO_PI)),
                capacity=cap * draw(st.floats(min_value=0.5, max_value=1.5)),
            )
            for _ in range(k)
        )
    return AngleInstance(
        thetas=np.array(thetas), demands=np.array(demands), antennas=antennas
    )


ALL_HEURISTICS = [
    ("greedy(greedy)", lambda i: solve_greedy_multi(i, GREEDY)),
    ("greedy(exact)", lambda i: solve_greedy_multi(i, EXACT)),
    ("adaptive(exact)", lambda i: solve_greedy_multi(i, EXACT, adaptive=True)),
    ("dp(exact)", lambda i: solve_non_overlapping_dp(i, EXACT)),
]


class TestUniversalInvariants:
    @SLOW
    @given(angle_instances())
    def test_all_solutions_verify(self, inst):
        for name, solve in ALL_HEURISTICS:
            sol = solve(inst)
            assert sol.violations(inst) == [], name

    @SLOW
    @given(angle_instances())
    def test_no_solver_beats_upper_bound(self, inst):
        ub = combined_upper_bound(inst)
        for name, solve in ALL_HEURISTICS:
            assert solve(inst).value(inst) <= ub + 1e-6, name

    @SLOW
    @given(angle_instances(max_n=7, max_k=2))
    def test_no_heuristic_beats_exact(self, inst):
        opt = solve_exact_angle(inst).value(inst)
        for name, solve in ALL_HEURISTICS:
            assert solve(inst).value(inst) <= opt + 1e-9, name

    @SLOW
    @given(angle_instances(max_n=7, max_k=2))
    def test_greedy_guarantees(self, inst):
        opt = solve_exact_angle(inst).value(inst)
        assert solve_greedy_multi(inst, EXACT).value(inst) >= 0.5 * opt - 1e-9
        assert solve_greedy_multi(inst, GREEDY).value(inst) >= opt / 3 - 1e-9
        beta = 0.8
        assert (
            solve_greedy_multi(inst, FPTAS).value(inst)
            >= beta / (1 + beta) * opt - 1e-9
        )

    @SLOW
    @given(angle_instances())
    def test_local_search_monotone_and_feasible(self, inst):
        base = solve_greedy_multi(inst, GREEDY)
        improved = improve_solution(inst, base, GREEDY)
        assert improved.violations(inst) == []
        assert improved.value(inst) >= base.value(inst) - 1e-9

    @SLOW
    @given(angle_instances(uniform=True))
    def test_dp_output_disjoint(self, inst):
        sol = solve_non_overlapping_dp(inst, GREEDY)
        assert sol.violations(inst, require_disjoint=True) == []

    @SLOW
    @given(angle_instances(uniform=True))
    def test_shifting_disjoint_and_below_dp(self, inst):
        sh = solve_shifting(inst, EXACT, t=6)
        assert sh.violations(inst, require_disjoint=True) == []
        # The theorem-level comparison (T6) is about the pre-fill values:
        # the boundary fill pass is a monotone extra on both solvers and
        # can flip the ordering by the filled amount.  It also only holds
        # away from the DP's documented measure-zero loss (packing/multi.py):
        # a customer exactly rho past a candidate start falls outside the
        # DP's half-open profit windows but inside the shifting scheme's
        # closed canonical windows, so the raw ordering can flip there.
        rho = inst.antennas[0].rho
        cands = np.asarray(inst.compile().candidates(), dtype=np.float64)
        offsets = (inst.thetas[None, :] - cands[:, None]) % TWO_PI
        assume(not np.isclose(offsets, rho, atol=1e-9).any())
        sh_raw = solve_shifting(inst, EXACT, t=6, boundary_fill=False)
        dp_raw = solve_non_overlapping_dp(
            inst, EXACT, boundary_fill=False
        ).value(inst)
        assert sh_raw.value(inst) <= dp_raw + 1e-9
        # And the fill never decreases value.
        assert sh.value(inst) >= sh_raw.value(inst) - 1e-9

    @SLOW
    @given(angle_instances())
    def test_splittable_dominates_integral(self, inst):
        sol = solve_greedy_multi(inst, EXACT)
        split = splittable_value(inst, sol.orientations)
        assert split >= sol.value(inst) - 1e-6

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(angle_instances(max_n=7, max_k=2))
    def test_lp_bound_dominates_exact(self, inst):
        assert lp_upper_bound(inst) >= solve_exact_angle(inst).value(inst) - 1e-6

    @SLOW
    @given(angle_instances())
    def test_solution_serialization_roundtrip(self, inst):
        sol = solve_greedy_multi(inst, GREEDY)
        back = solution_from_dict(solution_to_dict(sol))
        assert back.value(inst) == pytest.approx(sol.value(inst))
        assert back.violations(inst) == []

    @SLOW
    @given(angle_instances(max_n=8, uniform=False))
    def test_heterogeneous_antennas_all_solvers(self, inst):
        for name, solve in ALL_HEURISTICS:
            sol = solve(inst)
            assert sol.violations(inst) == [], name
