"""Doctest execution for documented modules + profiling helper tests."""

import doctest

import pytest

import repro.analysis.metrics
import repro.analysis.tables
import repro.geometry.angles
import repro.geometry.points
import repro.knapsack.api
import repro.obs
from repro.analysis.profiling import (
    ProfileRow,
    format_profile,
    hotspots,
    profile_call,
)
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.multi import solve_greedy_multi

DOCTEST_MODULES = [
    repro.geometry.angles,
    repro.geometry.points,
    repro.knapsack.api,
    repro.analysis.metrics,
    repro.analysis.tables,
    repro.obs,
]


@pytest.mark.parametrize(
    "module", DOCTEST_MODULES, ids=[m.__name__ for m in DOCTEST_MODULES]
)
def test_module_doctests(module):
    """Docstring examples are executable and correct."""
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0
    assert results.attempted > 0  # the module genuinely has examples


class TestProfiling:
    def test_profile_call_returns_result_and_rows(self):
        inst = gen.uniform_angles(n=40, k=2, seed=0)
        oracle = get_solver("greedy")
        value, rows = profile_call(
            lambda: solve_greedy_multi(inst, oracle).value(inst)
        )
        assert value > 0
        assert rows
        assert all(isinstance(r, ProfileRow) for r in rows)
        # rows are sorted by cumulative time
        cums = [r.cumulative_time for r in rows]
        assert cums == sorted(cums, reverse=True)

    def test_hotspots_filter(self):
        rows = [
            ProfileRow("repro/x.py:1(f)", 1, 0.1, 0.2),
            ProfileRow("numpy/y.py:2(g)", 1, 0.1, 0.3),
        ]
        hot = hotspots(rows, "repro")
        assert len(hot) == 1
        assert "repro" in hot[0].function

    def test_format_profile(self):
        rows = [ProfileRow("a.py:1(f)", 3, 0.5, 1.0)]
        out = format_profile(rows)
        assert "a.py:1(f)" in out
        assert "cumtime" in out

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            profile_call(boom)

    def test_profile_identifies_sweep_as_hot(self):
        """The guide's point: measure, don't guess — the sweep/oracle layer
        should dominate a greedy solve, not the verifier."""
        inst = gen.clustered_angles(n=300, k=3, seed=1)
        oracle = get_solver("greedy")
        _, rows = profile_call(
            lambda: solve_greedy_multi(inst, oracle).value(inst), top=40
        )
        ours = hotspots(rows, "repro")
        assert ours  # some repro frame appears in the hot list
