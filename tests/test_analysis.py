"""Tests for metrics, tables, and the experiment harness."""

import math

import pytest

from repro.analysis.experiments import SolverSpec, compare_solvers, ratio_study, report
from repro.analysis.metrics import (
    RunRecord,
    approximation_ratio,
    geometric_mean,
    summarize,
    timed,
)
from repro.analysis.tables import format_markdown, format_table
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing import solve_exact_angle, solve_greedy_multi


class TestMetrics:
    def test_ratio_normal(self):
        assert approximation_ratio(1.0, 2.0) == 0.5

    def test_ratio_zero_reference(self):
        assert approximation_ratio(0.0, 0.0) == 1.0
        assert approximation_ratio(1.0, 0.0) == math.inf

    def test_run_record_ratio(self):
        r = RunRecord("s", "f", value=3.0, seconds=0.1, reference=4.0)
        assert r.ratio == 0.75
        assert RunRecord("s", "f", 1.0, 0.1).ratio is None

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_timed(self):
        with timed() as t:
            sum(range(100))
        assert t["seconds"] >= 0

    def test_summarize(self):
        recs = [
            RunRecord("a", "f", 2.0, 0.1, reference=4.0),
            RunRecord("a", "g", 3.0, 0.3, reference=3.0),
            RunRecord("b", "f", 1.0, 0.2),
        ]
        agg = summarize(recs)
        assert agg["a"]["runs"] == 2
        assert agg["a"]["min_ratio"] == 0.5
        assert agg["a"]["geo_mean_ratio"] == pytest.approx(math.sqrt(0.5))
        assert "min_ratio" not in agg["b"]


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "v"], [["x", 1.5], ["longer", 2.25]], ".2f")
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in out and "2.25" in out

    def test_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_markdown(self):
        out = format_markdown(["a", "b"], [[1, 2.0]], ".1f")
        assert out.splitlines()[0] == "| a | b |"
        assert "| 1 | 2.0 |" in out

    def test_bool_formatting(self):
        out = format_table(["x"], [[True]])
        assert "True" in out


class TestHarness:
    def setup_method(self):
        self.exact = get_solver("exact")
        self.greedy = get_solver("greedy")
        self.instances = {
            "uniform": [gen.uniform_angles(n=8, k=2, seed=s) for s in range(2)],
        }
        self.solvers = [
            SolverSpec(
                "greedy",
                lambda i: solve_greedy_multi(i, self.exact).value(i),
                guarantee=0.5,
            ),
            SolverSpec("exact", lambda i: solve_exact_angle(i).value(i), guarantee=1.0),
        ]
        self.reference = lambda i: solve_exact_angle(i).value(i)

    def test_compare_runs_everything(self):
        recs = compare_solvers(self.instances, self.solvers)
        assert len(recs) == 4
        assert all(r.reference is None for r in recs)

    def test_compare_with_reference(self):
        recs = compare_solvers(self.instances, self.solvers, self.reference)
        assert all(r.reference is not None for r in recs)
        exact_recs = [r for r in recs if r.solver == "exact"]
        assert all(r.ratio == pytest.approx(1.0) for r in exact_recs)

    def test_ratio_study_enforces_guarantees(self):
        recs = ratio_study(self.instances, self.solvers, self.reference)
        assert recs

    def test_ratio_study_catches_violations(self):
        bad = [SolverSpec("zero", lambda i: 0.0, guarantee=0.9)]
        with pytest.raises(AssertionError):
            ratio_study(self.instances, bad, self.reference)

    def test_report_renders(self):
        recs = compare_solvers(self.instances, self.solvers, self.reference)
        out = report(recs, title="unit")
        assert "greedy" in out and "exact" in out and "unit" in out
