"""Tests for AngleInstance / SectorInstance / Station."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec
from repro.model.customer import Customer
from repro.model.instance import AngleInstance, SectorInstance, Station


def simple_angle_instance(n=5, k=2, rho=1.0, capacity=10.0):
    return AngleInstance(
        thetas=np.linspace(0, TWO_PI, n, endpoint=False),
        demands=np.arange(1.0, n + 1.0),
        antennas=tuple(AntennaSpec(rho=rho, capacity=capacity) for _ in range(k)),
    )


class TestAngleInstance:
    def test_basic_properties(self):
        inst = simple_angle_instance(n=5, k=2)
        assert inst.n == 5
        assert inst.k == 2
        assert inst.total_demand == pytest.approx(15.0)
        assert inst.total_profit == pytest.approx(15.0)
        assert inst.profit_equals_demand

    def test_arrays_read_only(self):
        inst = simple_angle_instance()
        with pytest.raises(ValueError):
            inst.thetas[0] = 1.0
        with pytest.raises(ValueError):
            inst.demands[0] = 1.0

    def test_thetas_normalized(self):
        inst = AngleInstance(
            thetas=np.array([-1.0, 7.0]),
            demands=np.array([1.0, 1.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert (inst.thetas >= 0).all() and (inst.thetas < TWO_PI).all()

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            AngleInstance(
                thetas=np.zeros(3),
                demands=np.ones(2),
                antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
            )

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            AngleInstance(
                thetas=np.zeros(2),
                demands=np.array([1.0, 0.0]),
                antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
            )

    def test_rejects_no_antennas(self):
        with pytest.raises(ValueError):
            AngleInstance(thetas=np.zeros(1), demands=np.ones(1), antennas=())

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            AngleInstance(
                thetas=np.zeros(1),
                demands=np.array([np.inf]),
                antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
            )

    def test_rejects_2d_thetas(self):
        with pytest.raises(ValueError):
            AngleInstance(
                thetas=np.zeros((2, 2)),
                demands=np.ones(2),
                antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
            )

    def test_capacities_and_widths(self):
        inst = simple_angle_instance(k=3, rho=0.7, capacity=4.0)
        assert inst.capacities.tolist() == [4.0, 4.0, 4.0]
        assert np.allclose(inst.widths, 0.7)

    def test_uniform_antennas_flag(self):
        inst = simple_angle_instance(k=2)
        assert inst.has_uniform_antennas
        mixed = inst.with_antennas(
            (AntennaSpec(rho=1.0, capacity=1.0), AntennaSpec(rho=2.0, capacity=1.0))
        )
        assert not mixed.has_uniform_antennas

    def test_from_customers(self):
        cs = [Customer(demand=2.0, theta=0.1), Customer(demand=3.0, theta=1.0, profit=9.0)]
        inst = AngleInstance.from_customers(cs, [AntennaSpec(rho=1.0, capacity=5.0)])
        assert inst.n == 2
        assert inst.profits.tolist() == [2.0, 9.0]

    def test_from_customers_rejects_planar(self):
        cs = [Customer(demand=1.0, position=(0, 0))]
        with pytest.raises(ValueError):
            AngleInstance.from_customers(cs, [AntennaSpec(rho=1.0, capacity=1.0)])

    def test_restrict(self):
        inst = simple_angle_instance(n=5)
        sub, idx = inst.restrict(np.array([0, 2, 4]))
        assert sub.n == 3
        assert idx.tolist() == [0, 2, 4]
        assert sub.demands.tolist() == [1.0, 3.0, 5.0]
        assert sub.antennas == inst.antennas

    def test_restrict_with_mask(self):
        inst = simple_angle_instance(n=4)
        sub, idx = inst.restrict(np.array([True, False, True, False]))
        assert idx.tolist() == [0, 2]
        assert sub.n == 2

    def test_equality(self):
        a = simple_angle_instance()
        b = simple_angle_instance()
        assert a == b
        c = simple_angle_instance(capacity=99.0)
        assert a != c

    def test_empty_instance_allowed(self):
        inst = AngleInstance(
            thetas=np.empty(0),
            demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert inst.n == 0
        assert inst.total_demand == 0.0


class TestStation:
    def test_requires_finite_radius(self):
        with pytest.raises(ValueError):
            Station(position=(0, 0), antennas=(AntennaSpec(rho=1.0, capacity=1.0),))

    def test_requires_antennas(self):
        with pytest.raises(ValueError):
            Station(position=(0, 0), antennas=())

    def test_max_radius(self):
        st = Station(
            position=(0, 0),
            antennas=(
                AntennaSpec(rho=1.0, capacity=1.0, radius=5.0),
                AntennaSpec(rho=1.0, capacity=1.0, radius=9.0),
            ),
        )
        assert st.max_radius == 9.0
        assert st.k == 2


class TestSectorInstance:
    def make(self):
        st = Station(
            position=(0.0, 0.0),
            antennas=(AntennaSpec(rho=math.pi, capacity=10.0, radius=5.0),),
        )
        return SectorInstance(
            positions=np.array([[1.0, 0.0], [0.0, 2.0], [10.0, 0.0]]),
            demands=np.array([1.0, 2.0, 3.0]),
            stations=(st,),
        )

    def test_properties(self):
        inst = self.make()
        assert inst.n == 3
        assert inst.m == 1
        assert inst.total_antennas == 1
        assert inst.total_demand == 6.0

    def test_rejects_bad_positions_shape(self):
        st = Station(
            position=(0, 0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0, radius=1.0),),
        )
        with pytest.raises(ValueError):
            SectorInstance(positions=np.zeros((3, 3)), demands=np.ones(3), stations=(st,))

    def test_rejects_no_stations(self):
        with pytest.raises(ValueError):
            SectorInstance(positions=np.zeros((1, 2)), demands=np.ones(1), stations=())

    def test_antenna_table(self):
        st1 = Station(
            position=(0, 0),
            antennas=(
                AntennaSpec(rho=1.0, capacity=1.0, radius=1.0),
                AntennaSpec(rho=2.0, capacity=1.0, radius=1.0),
            ),
        )
        st2 = Station(
            position=(5, 5),
            antennas=(AntennaSpec(rho=3.0, capacity=1.0, radius=1.0),),
        )
        inst = SectorInstance(
            positions=np.zeros((1, 2)), demands=np.ones(1), stations=(st1, st2)
        )
        table = inst.antenna_table()
        assert [(g, s) for g, s, _ in table] == [(0, 0), (1, 0), (2, 1)]
        assert table[1][2].rho == 2.0

    def test_station_polar(self):
        inst = self.make()
        thetas, rs = inst.station_polar(0)
        assert rs.tolist() == pytest.approx([1.0, 2.0, 10.0])
        assert thetas[0] == pytest.approx(0.0)
        assert thetas[1] == pytest.approx(math.pi / 2)

    def test_reachable_mask(self):
        inst = self.make()
        assert inst.reachable_mask(0).tolist() == [True, True, False]

    def test_station_angle_instance(self):
        inst = self.make()
        sub, idx = inst.station_angle_instance(0)
        assert idx.tolist() == [0, 1]
        assert sub.n == 2
        assert sub.antennas == inst.stations[0].antennas

    def test_from_customers(self):
        st = Station(
            position=(0, 0),
            antennas=(AntennaSpec(rho=1.0, capacity=5.0, radius=2.0),),
        )
        cs = [Customer(demand=1.0, position=(1.0, 0.0))]
        inst = SectorInstance.from_customers(cs, [st])
        assert inst.n == 1

    def test_from_customers_rejects_angular(self):
        st = Station(
            position=(0, 0),
            antennas=(AntennaSpec(rho=1.0, capacity=5.0, radius=2.0),),
        )
        with pytest.raises(ValueError):
            SectorInstance.from_customers([Customer(demand=1.0, theta=0.0)], [st])

    def test_equality(self):
        assert self.make() == self.make()
