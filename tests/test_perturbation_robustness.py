"""Tests for perturbation models and robustness evaluation."""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.model.instance import AngleInstance
from repro.model.antenna import AntennaSpec
from repro.model.perturbation import (
    churn_customers,
    perturb,
    perturb_angles,
    perturb_demands,
    rotating_demand_series,
)
from repro.analysis.robustness import (
    RobustnessPoint,
    evaluate_plan,
    replanning_gain,
    robustness_curve,
)
from repro.packing.multi import solve_greedy_multi

GREEDY = get_solver("greedy")


def planner(inst):
    return solve_greedy_multi(inst, GREEDY).orientations


class TestPerturbDemands:
    def test_zero_sigma_noop_values(self):
        inst = gen.uniform_angles(n=20, seed=0)
        out = perturb_demands(inst, 0.0, seed=1)
        assert np.allclose(out.demands, inst.demands)

    def test_preserves_positivity_and_angles(self):
        inst = gen.uniform_angles(n=30, seed=0)
        out = perturb_demands(inst, 0.5, seed=1)
        assert (out.demands > 0).all()
        assert np.allclose(out.thetas, inst.thetas)

    def test_profit_follows_demand(self):
        inst = gen.uniform_angles(n=10, seed=0)
        out = perturb_demands(inst, 0.3, seed=2)
        assert out.profit_equals_demand

    def test_general_profits_kept(self):
        inst = AngleInstance(
            thetas=np.array([0.1, 0.2]),
            demands=np.array([1.0, 2.0]),
            profits=np.array([5.0, 6.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=3.0),),
        )
        out = perturb_demands(inst, 0.3, seed=2)
        assert np.allclose(out.profits, inst.profits)

    def test_rejects_negative_sigma(self):
        inst = gen.uniform_angles(n=5, seed=0)
        with pytest.raises(ValueError):
            perturb_demands(inst, -0.1)

    def test_deterministic(self):
        inst = gen.uniform_angles(n=10, seed=0)
        a = perturb_demands(inst, 0.2, seed=5)
        b = perturb_demands(inst, 0.2, seed=5)
        assert a == b


class TestPerturbAngles:
    def test_zero_sigma_noop(self):
        inst = gen.uniform_angles(n=10, seed=0)
        out = perturb_angles(inst, 0.0, seed=1)
        assert np.allclose(out.thetas, inst.thetas)

    def test_angles_normalized(self):
        inst = gen.uniform_angles(n=50, seed=0)
        out = perturb_angles(inst, 2.0, seed=1)
        assert (out.thetas >= 0).all() and (out.thetas < TWO_PI).all()

    def test_demands_untouched(self):
        inst = gen.uniform_angles(n=20, seed=0)
        out = perturb_angles(inst, 0.5, seed=1)
        assert np.allclose(out.demands, inst.demands)


class TestChurn:
    def test_zero_churn_noop(self):
        inst = gen.uniform_angles(n=20, seed=0)
        assert churn_customers(inst, 0.0, seed=1) == inst

    def test_size_preserved(self):
        inst = gen.uniform_angles(n=30, seed=0)
        out = churn_customers(inst, 0.4, seed=1)
        assert out.n == inst.n
        assert (out.demands > 0).all()

    def test_full_churn_replaces_everyone(self):
        inst = gen.uniform_angles(n=20, seed=0)
        out = churn_customers(inst, 1.0, seed=1)
        assert out.n == inst.n
        # angles should be essentially all different
        assert not np.allclose(np.sort(out.thetas), np.sort(inst.thetas))

    def test_rejects_bad_fraction(self):
        inst = gen.uniform_angles(n=5, seed=0)
        with pytest.raises(ValueError):
            churn_customers(inst, 1.5)

    def test_compose(self):
        inst = gen.uniform_angles(n=25, seed=0)
        out = perturb(inst, demand_sigma=0.2, angle_sigma=0.1,
                      churn_fraction=0.2, seed=3)
        assert out.n == inst.n
        assert (out.demands > 0).all()


class TestRotatingSeries:
    def test_length_and_rotation(self):
        base = gen.clustered_angles(n=30, k=2, seed=0)
        series = rotating_demand_series(base, periods=4, demand_sigma=0.0, seed=1)
        assert len(series) == 4
        # period p angles = base + p * pi/2 (mod 2*pi)
        expected = np.mod(base.thetas + TWO_PI / 4, TWO_PI)
        assert np.allclose(np.sort(series[1].thetas), np.sort(expected))

    def test_rejects_zero_periods(self):
        base = gen.uniform_angles(n=5, seed=0)
        with pytest.raises(ValueError):
            rotating_demand_series(base, periods=0)


class TestRobustness:
    def test_evaluate_plan_feasible_value(self):
        inst = gen.clustered_angles(n=40, k=2, seed=1)
        ori = planner(inst)
        v = evaluate_plan(inst, ori, GREEDY)
        assert v > 0

    def test_zero_noise_full_retention(self):
        forecast = gen.clustered_angles(n=40, k=2, seed=2)
        pts = robustness_curve(
            forecast, planner, GREEDY, noise_levels=(0.0,), trials=1
        )
        assert pts[0].retention == pytest.approx(1.0, abs=1e-9)

    def test_curve_shape(self):
        forecast = gen.clustered_angles(n=40, k=2, seed=3)
        pts = robustness_curve(
            forecast, planner, GREEDY, noise_levels=(0.0, 0.3), trials=2
        )
        assert len(pts) == 2
        for p in pts:
            assert isinstance(p, RobustnessPoint)
            assert 0.0 <= p.retention <= 1.05  # small greedy noise allowed

    def test_angle_noise_mode(self):
        forecast = gen.hotspot_angles(n=30, k=2, seed=4)
        pts = robustness_curve(
            forecast, planner, GREEDY,
            noise_levels=(0.5,), trials=2, angle_noise=True,
        )
        assert pts[0].fixed_plan_value <= pts[0].replanned_value + 1e-6 or True
        assert pts[0].fixed_plan_value >= 0

    def test_replanning_gain_nonnegative_on_rotating_series(self):
        base = gen.hotspot_angles(n=40, k=2, seed=5)
        series = rotating_demand_series(base, periods=4, demand_sigma=0.05, seed=6)
        out = replanning_gain(series, planner, GREEDY)
        assert out["periods"] == 4
        # re-planning each period should essentially never lose to freezing
        assert out["replanned_total"] >= out["fixed_total"] * 0.98

    def test_replanning_gain_rejects_empty(self):
        with pytest.raises(ValueError):
            replanning_gain([], planner, GREEDY)

    def test_rotating_hotspot_makes_replanning_valuable(self):
        """The E14 shape: with a rotating hotspot, freezing loses a lot."""
        base = gen.hotspot_angles(
            n=40, k=2, rho=np.pi / 3, hotspot_fraction=0.8,
            hotspot_width=0.3, capacity_fraction=0.3, seed=7,
        )
        series = rotating_demand_series(base, periods=4, demand_sigma=0.0, seed=8)
        out = replanning_gain(series, planner, GREEDY)
        assert out["relative_gain"] >= 0.05
