"""The solver service: protocol, batching, backpressure, drain, metrics.

Everything here enforces the contracts frozen in ``docs/SERVICE.md``:
wire status codes, micro-batch coalescing observable through
``batch_size``, end-to-end deadlines (queue wait counts), load shedding
at the queue bound, graceful SIGTERM drain (exit 0), and the
``service.*`` metric names.  No pytest-asyncio here — async pieces run
under ``asyncio.run`` and the full server runs via ``start_in_thread``
or a subprocess.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import SolveRequest, clear_caches
from repro.model import generators
from repro.obs.metrics import get_registry
from repro.service import (
    STATUS_INVALID_INPUT,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    STATUS_USAGE,
    MicroBatcher,
    Overloaded,
    ProtocolError,
    ServiceClient,
    start_in_thread,
)
from repro.service import protocol

REPO = Path(__file__).resolve().parent.parent


def _instances(count, n=12, k=2):
    return [generators.uniform_angles(n=n, k=k, seed=s) for s in range(count)]


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_round_trip(self):
        envelope = {"op": "ping", "id": 7}
        line = protocol.encode_line(envelope)
        assert line.endswith(b"\n")
        assert protocol.decode_line(line) == envelope

    def test_malformed_json_is_invalid_input(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_line(b"{nope\n")
        assert err.value.status == STATUS_INVALID_INPUT

    def test_non_object_envelope_is_usage(self):
        with pytest.raises(ProtocolError) as err:
            protocol.decode_line(b"[1, 2]\n")
        assert err.value.status == STATUS_USAGE

    def test_unknown_field_is_usage(self):
        with pytest.raises(ProtocolError) as err:
            protocol.envelope_to_request({"instance": {}, "algorthm": "greedy"})
        assert err.value.status == STATUS_USAGE
        assert "algorthm" in str(err.value)

    def test_missing_instance_is_usage(self):
        with pytest.raises(ProtocolError) as err:
            protocol.envelope_to_request({"op": "solve"})
        assert err.value.status == STATUS_USAGE

    def test_status_from_error_mapping(self):
        assert protocol.status_from_error(None) == STATUS_OK
        assert protocol.status_from_error("BudgetExpired: x") == STATUS_TIMEOUT
        assert (protocol.status_from_error("InvalidInstanceError: y")
                == STATUS_INVALID_INPUT)
        assert protocol.status_from_error("ValueError: z") == STATUS_USAGE
        assert protocol.status_from_error("SomethingWeird: q") == 1

    def test_knapsack_triple_instance(self):
        request = protocol.envelope_to_request({
            "instance": [[1.0, 2.0], [3.0, 4.0], 2.5],
            "family": "knapsack",
        })
        assert request.family == "knapsack"
        weights, profits, capacity = request.instance
        assert capacity == 2.5 and len(weights) == len(profits) == 2


# ----------------------------------------------------------------------
# MicroBatcher (event-loop level, no sockets)
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_queue_bound_sheds(self):
        async def scenario():
            batcher = MicroBatcher(queue_bound=2, flush_interval_s=0.001)
            inst = _instances(1)[0]
            batcher.submit(SolveRequest(instance=inst, algorithm="greedy"))
            batcher.submit(SolveRequest(instance=inst, algorithm="greedy"))
            with pytest.raises(Overloaded):
                batcher.submit(SolveRequest(instance=inst, algorithm="greedy"))
            assert batcher.depth == 2

        asyncio.run(scenario())

    def test_closed_batcher_sheds(self):
        async def scenario():
            batcher = MicroBatcher()
            batcher.close()
            with pytest.raises(Overloaded):
                batcher.submit(
                    SolveRequest(instance=_instances(1)[0], algorithm="greedy")
                )

        asyncio.run(scenario())

    def test_drain_completes_admitted_work(self):
        """close() lets everything already admitted finish (the SIGTERM path)."""
        async def scenario():
            clear_caches()
            batcher = MicroBatcher(max_batch=4, flush_interval_s=0.001)
            futures = [
                batcher.submit(
                    SolveRequest(instance=inst, algorithm="greedy",
                                 use_cache=False)
                )
                for inst in _instances(6)
            ]
            batcher.close()          # drain requested before any dispatch ran
            await batcher.run()      # must terminate on its own...
            assert all(f.done() for f in futures)
            return [f.result() for f in futures]

        reports = asyncio.run(scenario())
        assert len(reports) == 6
        assert all(r.error is None for r in reports)

    def test_expired_deadline_sheds_without_solving(self):
        async def scenario():
            clear_caches()
            batcher = MicroBatcher(max_batch=8, flush_interval_s=0.05)
            inst = _instances(1)[0]
            future = batcher.submit(
                SolveRequest(instance=inst, algorithm="greedy",
                             timeout_s=1e-9, use_cache=False)
            )
            await asyncio.sleep(0.01)  # let the deadline pass in the queue
            batcher.close()
            await batcher.run()
            return future.result()

        report = asyncio.run(scenario())
        assert report.error is not None
        assert report.error.startswith("BudgetExpired")
        assert protocol.status_from_error(report.error) == STATUS_TIMEOUT


# ----------------------------------------------------------------------
# End-to-end over TCP (start_in_thread)
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_batch_coalescing_and_metrics(self):
        clear_caches()
        handle = start_in_thread(port=0, max_batch=16, flush_interval_s=0.02)
        try:
            with ServiceClient(port=handle.port) as client:
                assert client.ping()["status"] == STATUS_OK

                responses = client.solve_batch(
                    _instances(8), algorithm="greedy", use_cache=False
                )
                assert [r["status"] for r in responses] == [STATUS_OK] * 8
                assert all(r["algorithm"] == "greedy" for r in responses)
                # A pipelined burst must coalesce: the contract the
                # micro-batcher exists for (docs/SERVICE.md).
                assert max(r["batch_size"] for r in responses) > 1

                # Repeat solve -> warm parent cache.
                inst = _instances(1)[0]
                first = client.solve(inst, algorithm="greedy")
                again = client.solve(inst, algorithm="greedy")
                assert first["status"] == again["status"] == STATUS_OK
                assert again["cached"] is True
                assert again["value"] == pytest.approx(first["value"])

                stats = client.stats()
                assert stats["status"] == STATUS_OK
                assert stats["queue_bound"] == 256
                metrics = stats["metrics"]
                for name in [
                    "service.requests", "service.responses", "service.shed",
                    "service.expired", "service.batches",
                    "service.cache_served", "service.batch_occupancy",
                    "service.queue_depth", "service.latency",
                    "service.connections",
                ]:
                    assert name in metrics, name
                assert metrics["service.latency"]["type"] == "histogram"
                assert metrics["service.latency"]["count"] >= 10
                assert metrics["service.cache_served"]["value"] >= 1
        finally:
            handle.stop()

    def test_wire_statuses_for_bad_requests(self):
        handle = start_in_thread(port=0)
        try:
            with socket.create_connection(("127.0.0.1", handle.port)) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b"not json\n")
                assert json.loads(reader.readline())["status"] == STATUS_INVALID_INPUT
                sock.sendall(b'{"op": "warp", "id": 1}\n')
                response = json.loads(reader.readline())
                assert response["id"] == 1
                assert response["status"] == STATUS_USAGE
                sock.sendall(b'{"op": "solve", "id": 2}\n')
                assert json.loads(reader.readline())["status"] == STATUS_USAGE
        finally:
            handle.stop()

    def test_oversized_line_is_structured_error(self):
        """A line past ``max_line_bytes`` answers status 3, not silence."""
        handle = start_in_thread(port=0, max_line_bytes=1024)
        try:
            with socket.create_connection(("127.0.0.1", handle.port)) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b'{"op": "ping", "id": 1}\n')
                assert json.loads(reader.readline())["status"] == STATUS_OK
                sock.sendall(b'{"pad": "' + b"x" * 4096 + b'"}\n')
                response = json.loads(reader.readline())
                assert response["status"] == STATUS_INVALID_INPUT
                assert "exceeds" in response["error"]
                assert response["limit"] == 1024
                # The stream cannot be resynchronized after an overlong
                # line, so the server must close the connection.
                assert reader.readline() == b""
        finally:
            handle.stop()

    def test_deadline_expired_answers_status_4(self):
        clear_caches()
        handle = start_in_thread(port=0, flush_interval_s=0.05)
        try:
            with ServiceClient(port=handle.port) as client:
                response = client.solve(
                    _instances(1)[0], algorithm="greedy",
                    timeout_s=1e-9, use_cache=False,
                )
                assert response["status"] == STATUS_TIMEOUT
                assert "BudgetExpired" in response["error"]
        finally:
            handle.stop()

    def test_queue_bound_answers_status_5(self):
        clear_caches()
        handle = start_in_thread(
            port=0, queue_bound=1, max_batch=1, flush_interval_s=0.5
        )
        try:
            with ServiceClient(port=handle.port) as client:
                responses = client.solve_batch(
                    _instances(12, n=20), algorithm="greedy", use_cache=False
                )
                statuses = {r["status"] for r in responses}
                shed = [r for r in responses if r["status"] == STATUS_OVERLOADED]
                assert STATUS_OVERLOADED in statuses
                assert all("shed" in r["error"] for r in shed)
                assert any(r["status"] == STATUS_OK for r in responses)
        finally:
            handle.stop()

    def test_solution_payload_round_trips(self):
        from repro.model.serialization import solution_from_dict

        clear_caches()
        inst = _instances(1)[0]
        handle = start_in_thread(port=0)
        try:
            with ServiceClient(port=handle.port) as client:
                response = client.solve(
                    inst, algorithm="greedy", want_solution=True
                )
            assert response["status"] == STATUS_OK
            solution = solution_from_dict(response["solution"])
            solution.verify(inst)
            assert solution.value(inst) == pytest.approx(response["value"])
        finally:
            handle.stop()

    def test_shutdown_op_drains(self):
        handle = start_in_thread(port=0)
        with ServiceClient(port=handle.port) as client:
            response = client.shutdown()
            assert response["status"] == STATUS_OK and response["draining"]
        handle.stop()  # must already be stopping; idempotent
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", handle.port), timeout=0.5)


# ----------------------------------------------------------------------
# The event op (dynamic workloads, docs/ONLINE.md)
# ----------------------------------------------------------------------
class TestEventOp:
    def test_envelope_validation(self):
        with pytest.raises(ProtocolError) as err:
            protocol.envelope_to_event({"op": "event"})  # no session
        assert err.value.status == STATUS_USAGE
        with pytest.raises(ProtocolError) as err:
            protocol.envelope_to_event(
                {"op": "event", "session": "s", "frobnicate": 1}
            )
        assert err.value.status == STATUS_USAGE
        with pytest.raises(ProtocolError) as err:
            protocol.envelope_to_event(
                {"op": "event", "session": "s",
                 "events": [{"type": "teleport"}]}
            )
        assert err.value.status == STATUS_USAGE
        with pytest.raises(ProtocolError) as err:
            protocol.envelope_to_event(
                {"op": "event", "session": "s",
                 "resolve": {"bogus_option": 1}}
            )
        assert err.value.status == STATUS_USAGE

    def test_open_apply_resolve_round_trip(self):
        from repro.online.delta import AddCustomer, RemoveCustomer, UpdateDemand

        clear_caches()
        inst = _instances(1, n=16)[0]
        handle = start_in_thread(port=0)
        try:
            with ServiceClient(port=handle.port) as client:
                opened = client.event("t-sess", instance=inst,
                                      resolve={"algorithm": "greedy"})
                assert opened["status"] == STATUS_OK
                assert opened["extra"]["n"] == 16
                offline = opened["extra"]["resolve"]["value"]

                applied = client.event(
                    "t-sess",
                    events=[AddCustomer(demand=1.0, theta=0.25),
                            UpdateDemand(index=0, demand=2.0, profit=2.0),
                            RemoveCustomer(index=3)],
                    resolve={"algorithm": "greedy"},
                )
                assert applied["status"] == STATUS_OK
                assert applied["extra"]["applied"] == 3
                assert applied["extra"]["n"] == 16
                assert applied["extra"]["fingerprint"] != opened["extra"]["fingerprint"]
                assert applied["extra"]["resolve"]["value"] > 0.0
                assert offline > 0.0
        finally:
            handle.stop()

    def test_unknown_session_is_usage_status(self):
        handle = start_in_thread(port=0)
        try:
            with ServiceClient(port=handle.port) as client:
                response = client.event(
                    "never-opened",
                    events=[{"type": "remove_customer", "index": 0}],
                )
                assert response["status"] == STATUS_USAGE
                assert "unknown session" in response["error"]
        finally:
            handle.stop()

    def test_bad_event_value_is_invalid_input_status(self):
        clear_caches()
        inst = _instances(1, n=8)[0]
        handle = start_in_thread(port=0)
        try:
            with ServiceClient(port=handle.port) as client:
                opened = client.event("bad-sess", instance=inst)
                assert opened["status"] == STATUS_OK
                response = client.event(
                    "bad-sess",
                    events=[{"type": "add_customer", "demand": -1.0,
                             "theta": 0.5}],
                )
                assert response["status"] == STATUS_INVALID_INPUT
                assert "InvalidInstanceError" in response["error"]
        finally:
            handle.stop()

    def test_events_batch_alongside_solves(self):
        """Event and solve requests can share one pipelined connection."""
        clear_caches()
        inst = _instances(1, n=12)[0]
        handle = start_in_thread(port=0, flush_interval_s=0.05)
        try:
            with ServiceClient(port=handle.port) as client:
                opened = client.event("mix-sess", instance=inst)
                assert opened["status"] == STATUS_OK
                solve = client.solve(inst, algorithm="greedy")
                assert solve["status"] == STATUS_OK
                applied = client.event(
                    "mix-sess",
                    events=[{"type": "add_customer", "demand": 1.0,
                             "theta": 1.0}],
                )
                assert applied["status"] == STATUS_OK
                assert applied["extra"]["n"] == 13
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Client reconnect-with-backoff
# ----------------------------------------------------------------------
class _CutOnceProxy:
    """TCP proxy that severs the first client connection after relaying
    exactly one response line, then forwards later connections untouched.

    Models a mid-pipeline connection loss: the client has sent several
    requests, received one answer, and the socket dies under it.
    """

    def __init__(self, backend_port):
        self._backend_port = backend_port
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._cut_spent = threading.Event()
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def close(self):
        self._listener.close()

    def _accept_loop(self):
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            cut = not self._cut_spent.is_set()
            self._cut_spent.set()
            threading.Thread(
                target=self._serve, args=(client, cut), daemon=True
            ).start()

    def _serve(self, client, cut_after_one_line):
        backend = socket.create_connection(("127.0.0.1", self._backend_port))

        def upstream():
            try:
                while True:
                    data = client.recv(65536)
                    if not data:
                        break
                    backend.sendall(data)
            except OSError:
                pass
            finally:
                try:
                    backend.shutdown(socket.SHUT_WR)
                except OSError:
                    pass

        threading.Thread(target=upstream, daemon=True).start()
        buffered = b""
        try:
            while True:
                data = backend.recv(65536)
                if not data:
                    break
                if not cut_after_one_line:
                    client.sendall(data)
                    continue
                buffered += data
                newline = buffered.find(b"\n")
                if newline >= 0:
                    client.sendall(buffered[: newline + 1])
                    break  # drop the rest and hang up mid-pipeline
        except OSError:
            pass
        finally:
            for sock in (client, backend):
                # shutdown() before close(): the upstream thread may still
                # be blocked in recv() on this socket, which pins the kernel
                # file description — a bare close() would never send FIN and
                # the peer would hang instead of seeing the cut.
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass


class TestClientReconnect:
    def test_mid_pipeline_cut_resends_without_resolving(self):
        """The client redials and resends the *same* envelopes; the server's
        result cache answers the resends, so nothing is solved twice."""
        clear_caches()
        handle = start_in_thread(port=0, max_batch=8, flush_interval_s=0.005)
        proxy = _CutOnceProxy(handle.port)
        try:
            before = get_registry().snapshot()
            with ServiceClient(port=proxy.port, timeout_s=60.0) as client:
                responses = client.solve_batch(
                    _instances(4), algorithm="greedy"
                )
                assert client.reconnects >= 1
            assert [r["status"] for r in responses] == [STATUS_OK] * 4
            # One answer arrived before the cut; the other three were
            # resent under their original ids and served from cache.
            assert sum(1 for r in responses if r.get("cached")) == 3
            after = get_registry().snapshot()
            served = (after["service.cache_served"]["value"]
                      - before.get("service.cache_served", {}).get("value", 0))
            assert served == 3
        finally:
            proxy.close()
            handle.stop()

    def test_reconnect_attempts_exhausted_raises(self):
        from repro.service import ServiceError

        handle = start_in_thread(port=0)
        client = ServiceClient(port=handle.port, reconnect_backoff_s=0.001)
        try:
            assert client.ping()["status"] == STATUS_OK
            handle.stop()  # nothing is listening on this port any more
            with pytest.raises(ServiceError, match="reconnect"):
                client.ping()
        finally:
            client.close()


# ----------------------------------------------------------------------
# The CLI pair: serve drains on SIGTERM/SIGINT, client relays statuses
# ----------------------------------------------------------------------
class TestServeProcess:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        return env

    def _drain_on_signal(self, tmp_path, sig):
        sock_path = tmp_path / "repro.sock"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--unix", str(sock_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=self._env(), cwd=REPO,
        )
        try:
            deadline = time.monotonic() + 30
            while not sock_path.exists():
                assert time.monotonic() < deadline, "service never bound"
                assert proc.poll() is None, proc.communicate()[1]
                time.sleep(0.05)
            with ServiceClient(unix_path=str(sock_path)) as client:
                assert client.ping()["status"] == STATUS_OK
                response = client.solve(
                    _instances(1)[0], algorithm="greedy"
                )
                assert response["status"] == STATUS_OK
            proc.send_signal(sig)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "serving on" in out
        assert "drained cleanly" in out

    def test_sigterm_drains_cleanly(self, tmp_path):
        self._drain_on_signal(tmp_path, signal.SIGTERM)

    def test_sigint_drains_cleanly(self, tmp_path):
        """Ctrl-C parity: SIGINT takes the same drain path as SIGTERM."""
        self._drain_on_signal(tmp_path, signal.SIGINT)

    def test_version_flag(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True, text=True, env=self._env(), cwd=REPO,
        )
        assert out.returncode == 0
        assert out.stdout.strip().startswith("repro-sectors ")

    def test_help_epilog_documents_exit_codes(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, env=self._env(), cwd=REPO,
        )
        assert out.returncode == 0
        assert "exit codes:" in out.stdout
        for code in range(6):
            assert f"\n  {code}  " in out.stdout
