"""Tests for the online admission variant (repro.online)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec
from repro.online import (
    OnlineAdmission,
    POLICIES,
    replay_offline_reference,
    work_conserving_bound,
)
from repro.online.admission import make_threshold_policy


def two_beams(capacity=4.0, rho=2.0):
    return (
        [AntennaSpec(rho=rho, capacity=capacity), AntennaSpec(rho=rho, capacity=capacity)],
        [0.0, 3.0],
    )


class TestOnlineAdmissionBasics:
    def test_accepts_covered_fitting(self):
        ants, oris = two_beams()
        sim = OnlineAdmission(ants, oris, policy="first_fit")
        assert sim.offer(0.5, 1.0) == 0
        assert sim.accepted_demand == 1.0
        assert sim.accepted_count == 1

    def test_rejects_uncovered(self):
        ants, oris = two_beams()
        sim = OnlineAdmission(ants, oris)
        assert sim.offer(5.8, 1.0) == -1  # outside both arcs
        assert sim.rejected_count == 1

    def test_rejects_when_full(self):
        ants, oris = two_beams(capacity=1.0)
        sim = OnlineAdmission(ants, oris, policy="first_fit")
        assert sim.offer(0.5, 1.0) == 0
        # theta=0.5 is covered only by the arc at 0.0 (the other arc covers
        # [3, 5]), and that antenna is now full -> irrevocable rejection.
        assert sim.offer(0.5, 1.0) == -1
        assert sim.rejected_count == 1

    def test_overlapping_beams_spill(self):
        ants = [AntennaSpec(rho=2.0, capacity=1.0), AntennaSpec(rho=2.0, capacity=1.0)]
        sim = OnlineAdmission(ants, [0.0, 0.0], policy="first_fit")
        assert sim.offer(0.5, 1.0) == 0
        assert sim.offer(0.5, 1.0) == 1  # second identical beam takes the spill

    def test_rejects_nonpositive_demand(self):
        ants, oris = two_beams()
        sim = OnlineAdmission(ants, oris)
        with pytest.raises(ValueError):
            sim.offer(0.5, 0.0)

    def test_misaligned_inputs(self):
        ants, _ = two_beams()
        with pytest.raises(ValueError):
            OnlineAdmission(ants, [0.0])

    def test_unknown_policy(self):
        ants, oris = two_beams()
        with pytest.raises(ValueError):
            OnlineAdmission(ants, oris, policy="psychic")

    def test_run_stream(self):
        ants, oris = two_beams()
        sim = OnlineAdmission(ants, oris, policy="best_fit")
        total = sim.run([0.5, 3.5, 0.7], [1.0, 2.0, 1.0])
        assert total == pytest.approx(4.0)

    def test_residuals_decrease(self):
        ants, oris = two_beams(capacity=5.0)
        sim = OnlineAdmission(ants, oris)
        sim.offer(0.5, 2.0)
        assert sim.residuals.tolist() == [3.0, 5.0]


class TestPolicies:
    def test_best_fit_packs_tightest(self):
        # both antennas cover theta=3.5 (arcs [3,5] and... make overlapping arcs)
        ants = [AntennaSpec(rho=2.0, capacity=5.0), AntennaSpec(rho=2.0, capacity=5.0)]
        oris = [3.0, 3.0]
        sim = OnlineAdmission(ants, oris, policy="best_fit")
        sim.offer(3.5, 3.0)   # goes to antenna 0 (tie, first)
        sim.offer(3.5, 1.5)   # residuals (2.0, 5.0): best fit -> antenna 0
        assert sim.residuals.tolist() == [0.5, 5.0]

    def test_worst_fit_balances(self):
        ants = [AntennaSpec(rho=2.0, capacity=5.0), AntennaSpec(rho=2.0, capacity=5.0)]
        oris = [3.0, 3.0]
        sim = OnlineAdmission(ants, oris, policy="worst_fit")
        sim.offer(3.5, 3.0)
        sim.offer(3.5, 1.5)   # residuals (2.0, 5.0): worst fit -> antenna 1
        assert sim.residuals.tolist() == [2.0, 3.5]

    def test_threshold_rejects_whales(self):
        ants, oris = two_beams(capacity=4.0)
        sim = OnlineAdmission(ants, oris, policy=make_threshold_policy(0.5))
        assert sim.offer(0.5, 3.0) == -1  # 3.0 > 0.5 * 4.0
        assert sim.offer(0.5, 1.5) >= 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            make_threshold_policy(0.0)
        with pytest.raises(ValueError):
            make_threshold_policy(1.5)


class TestCompetitiveGuarantee:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=TWO_PI - 1e-9),
                st.floats(min_value=0.1, max_value=1.0),
            ),
            min_size=1,
            max_size=14,
        ),
        st.sampled_from(sorted(POLICIES)),
    )
    def test_work_conserving_floor(self, stream, policy_name):
        """Every work-conserving policy clears the (1-d)/(2-d) floor."""
        ants, oris = two_beams(capacity=3.0, rho=2.5)
        thetas = [t for t, _ in stream]
        demands = [d for _, d in stream]
        sim = OnlineAdmission(ants, oris, policy=policy_name)
        online = sim.run(thetas, demands)
        offline = replay_offline_reference(ants, oris, thetas, demands)
        floor = work_conserving_bound(ants, demands)
        assert online >= floor * offline - 1e-9

    def test_floor_values(self):
        ants = [AntennaSpec(rho=1.0, capacity=4.0)]
        # d_max=1, c_min=4 -> delta=.25 -> floor = .75/1.75
        assert work_conserving_bound(ants, [1.0, 0.5]) == pytest.approx(0.75 / 1.75)
        assert work_conserving_bound(ants, []) == 1.0
        assert work_conserving_bound(ants, [5.0]) == 0.0

    def test_small_demands_near_optimal(self):
        rng = np.random.default_rng(3)
        ants, oris = two_beams(capacity=5.0, rho=2.5)
        thetas = rng.uniform(0, TWO_PI, 60)
        demands = rng.uniform(0.05, 0.15, 60)
        sim = OnlineAdmission(ants, oris, policy="best_fit")
        online = sim.run(thetas, demands)
        offline = replay_offline_reference(ants, oris, thetas, demands)
        assert online >= 0.9 * offline - 1e-9


class TestOfflineReference:
    def test_small_uses_exact(self):
        ants, oris = two_beams()
        v = replay_offline_reference(ants, oris, [0.5, 3.5], [1.0, 2.0])
        assert v == pytest.approx(3.0)

    def test_large_uses_splittable(self):
        rng = np.random.default_rng(0)
        ants, oris = two_beams(capacity=3.0)
        thetas = rng.uniform(0, TWO_PI, 40)
        demands = rng.uniform(0.2, 0.6, 40)
        v = replay_offline_reference(ants, oris, thetas, demands, exact_limit=5)
        assert v > 0
