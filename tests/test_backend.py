"""The numpy backend against its pure-python oracle (``docs/BACKENDS.md``).

Four families of guarantees frozen here:

* **kernel identity** — each kernel in :mod:`repro.core.backend` matches
  the scalar loop it replaces, at the identity class its docstring
  claims: bit-identical for `batched_station_polar` /
  `nearest_reaching_station`, accept-set / value-identical for
  `greedy_prefix_mask` and `rotation_scan`;
* **solver identity** — every numpy-capable registered solver returns
  the same objective value under ``backend="python"`` and
  ``backend="numpy"`` through the public engine, on randomized
  continuous instances (caching disabled so both paths really run);
* **selection discipline** — `plan_backend` honours explicit requests,
  falls back cleanly on python-only specs (observable via the
  ``engine.backend.*`` counters), and `auto` respects the size
  threshold;
* **staleness guard** — mutating instance arrays after ``compile()``
  raises instead of silently serving a stale view.
"""

import math

import numpy as np
import pytest

from repro.core.backend import (
    AUTO_NUMPY_MIN_N,
    batched_station_polar,
    greedy_prefix_mask,
    nearest_reaching_station,
    normalize_backend,
    rotation_scan,
)
from repro.engine import SolveRequest, plan_backend, solve
from repro.engine.cache import clear_caches
from repro.geometry.points import relative_polar
from repro.geometry.sweep import CircularSweep
from repro.knapsack.api import _fits
from repro.knapsack.greedy import solve_greedy
from repro.model import generators as gen
from repro.obs.metrics import get_registry


def _counter(name: str) -> int:
    return int(get_registry().counter(name).value)


# ---------------------------------------------------------------------------
# kernel identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_greedy_prefix_mask_matches_sequential_scan(seed):
    rng = np.random.default_rng(seed)
    n = 400
    w = rng.uniform(0.05, 1.0, size=n)
    cap = float(0.3 * w.sum())

    accept = greedy_prefix_mask(w, cap)

    expect = np.zeros(n, dtype=bool)
    remaining = cap
    for i in range(n):
        if _fits(w[i], remaining):
            expect[i] = True
            remaining -= w[i]
    assert np.array_equal(accept, expect)


def test_greedy_prefix_mask_exact_boundary_weights():
    # Weights that exactly fill the capacity: the fits() slack must admit
    # the boundary item on both paths, and reject the one past it.
    w = np.array([0.5, 0.5, 0.5, 0.25, 0.25])
    accept = greedy_prefix_mask(w, 1.0)
    expect = np.zeros(5, dtype=bool)
    remaining = 1.0
    for i in range(5):
        if _fits(w[i], remaining):
            expect[i] = True
            remaining -= w[i]
    assert np.array_equal(accept, expect)
    assert accept[0] and accept[1] and not accept[2]


def test_greedy_prefix_mask_empty_and_nothing_fits():
    assert greedy_prefix_mask(np.array([]), 1.0).size == 0
    assert not greedy_prefix_mask(np.array([5.0, 7.0]), 1.0).any()


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("capacity_scale", [0.1, 0.6, 10.0])
def test_rotation_scan_seed_and_prune_invariants(seed, capacity_scale):
    rng = np.random.default_rng(seed)
    n = 120
    thetas = rng.uniform(0.0, 2 * math.pi, size=n)
    demands = rng.uniform(0.1, 1.0, size=n)
    profits = rng.uniform(0.1, 1.0, size=n)
    sweep = CircularSweep(thetas, math.pi / 3)
    profit_sums = sweep.window_sums(profits)
    demand_sums = sweep.window_sums(demands)
    ids = np.asarray(sweep.unique_window_ids())
    capacity = float(capacity_scale * demands.sum() / 3)

    best_id, best_value, best_demand, hard = rotation_scan(
        ids, profit_sums, demand_sums, capacity
    )

    fitting = [i for i in ids if demand_sums[i] <= capacity * (1 + 1e-9)]
    if best_id >= 0:
        assert best_id in set(int(i) for i in ids)
        assert best_value == pytest.approx(float(profit_sums[best_id]))
        assert best_demand == pytest.approx(float(demand_sums[best_id]))
        # It is the *best* fitting window: no fitting window beats it.
        assert all(profit_sums[i] <= best_value + 1e-9 for i in fitting)
    # Every surviving hard window still beats the incumbent and does not
    # fit; every non-surviving non-fitting window is provably prunable.
    hard_set = set(int(i) for i in hard)
    for i in ids:
        i = int(i)
        fits_i = demand_sums[i] <= capacity * (1 + 1e-9)
        if i in hard_set:
            assert not fits_i
            assert profit_sums[i] > best_value
    # Decreasing-potential visit order for the oracle caller.
    pots = profit_sums[hard]
    assert np.all(np.diff(pots) <= 1e-12)


@pytest.mark.parametrize("seed", [0, 1])
def test_batched_station_polar_bit_identical(seed):
    inst = gen.grid_city(n=80, seed=seed)
    thetas_all, rs_all = batched_station_polar(inst)
    for s, st in enumerate(inst.stations):
        th, r = relative_polar(
            inst.positions, np.asarray(st.position, dtype=np.float64)
        )
        # Bit identity, not approx: same ufuncs, batched shape.
        assert np.array_equal(thetas_all[s], th)
        assert np.array_equal(rs_all[s], r)


def test_nearest_reaching_station_matches_python_loop():
    rng = np.random.default_rng(7)
    m, n = 4, 60
    rs_all = rng.uniform(0.0, 10.0, size=(m, n))
    max_radii = rng.uniform(2.0, 6.0, size=m)
    slack = 1.0 + 1e-12

    home = nearest_reaching_station(rs_all, max_radii, slack=slack)

    for c in range(n):
        best, best_d = -1, math.inf
        for s in range(m):
            d = rs_all[s, c]
            if d <= max_radii[s] * slack and d < best_d:
                best, best_d = s, d
        assert home[c] == best


def test_nearest_reaching_station_unreachable_customer():
    rs_all = np.array([[100.0, 1.0], [100.0, 2.0]])
    home = nearest_reaching_station(rs_all, np.array([5.0, 5.0]))
    assert home[0] == -1 and home[1] == 0


# ---------------------------------------------------------------------------
# solver identity through the engine
# ---------------------------------------------------------------------------

NUMPY_CAPABLE = [
    ("angle", "greedy"),
    ("angle", "adaptive"),
    ("angle", "greedy+ls"),
    ("angle", "single"),
    ("sector", "greedy"),
    ("sector", "greedy+ls"),
    ("sector", "independent"),
    ("knapsack", "greedy"),
]


def _instance_for(family: str, algorithm: str, seed: int):
    if family == "angle":
        k = 1 if algorithm == "single" else 3
        return gen.uniform_angles(n=90, k=k, capacity_fraction=0.3, seed=seed)
    if family == "sector":
        return gen.grid_city(n=70, capacity_fraction=0.5, seed=seed)
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.05, 1.0, size=300)
    p = rng.uniform(0.05, 1.0, size=300)
    return (w, p, float(0.3 * w.sum()))


@pytest.mark.parametrize("family,algorithm", NUMPY_CAPABLE)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_numpy_backend_value_identical(family, algorithm, seed):
    inst = _instance_for(family, algorithm, seed)
    # use_cache=False: the result-cache key deliberately ignores the
    # backend, so a cached python result would otherwise answer the
    # numpy request and the test would compare a value with itself.
    reports = {
        backend: solve(
            SolveRequest(
                instance=inst,
                family=family,
                algorithm=algorithm,
                backend=backend,
                use_cache=False,
            )
        )
        for backend in ("python", "numpy")
    }
    assert reports["python"].value == reports["numpy"].value


def test_numpy_backend_identical_under_duplicate_angles():
    # Duplicate angles stress the sweep's tie handling; values must agree.
    base = gen.uniform_angles(n=40, k=2, capacity_fraction=0.4, seed=5)
    thetas = np.concatenate([base.thetas, base.thetas[:20]])
    demands = np.concatenate([base.demands, base.demands[:20]])
    inst = type(base)(thetas=thetas, demands=demands, antennas=base.antennas)
    vals = [
        solve(
            SolveRequest(
                instance=inst,
                family="angle",
                algorithm="greedy",
                backend=b,
                use_cache=False,
            )
        ).value
        for b in ("python", "numpy")
    ]
    assert vals[0] == vals[1]


def test_numpy_backend_empty_sector_instance():
    inst = gen.grid_city(n=4, grid=1, spacing=2.0, capacity_fraction=1.0,
                         seed=0)
    vals = [
        solve(
            SolveRequest(
                instance=inst,
                family="sector",
                algorithm="independent",
                backend=b,
                use_cache=False,
            )
        ).value
        for b in ("python", "numpy")
    ]
    assert vals[0] == vals[1]


# ---------------------------------------------------------------------------
# selection discipline
# ---------------------------------------------------------------------------


def test_plan_backend_rules():
    both = ("python", "numpy")
    only_py = ("python",)
    assert plan_backend("python", both, 10**6) == ("python", False)
    assert plan_backend("numpy", both, 1) == ("numpy", False)
    assert plan_backend("numpy", only_py, 10**6) == ("python", True)
    assert plan_backend("auto", both, AUTO_NUMPY_MIN_N) == ("numpy", False)
    assert plan_backend("auto", both, AUTO_NUMPY_MIN_N - 1) == (
        "python",
        False,
    )
    assert plan_backend("auto", only_py, 10**6) == ("python", False)
    with pytest.raises(ValueError):
        plan_backend("cuda", both, 10)
    with pytest.raises(ValueError):
        normalize_backend("fortran")


def test_numpy_request_on_python_only_spec_falls_back_cleanly():
    inst = _instance_for("knapsack", "fptas", seed=0)
    before = _counter("engine.backend.fallback")
    report = solve(
        SolveRequest(
            instance=inst,
            family="knapsack",
            algorithm="fptas",
            eps=0.5,
            backend="numpy",
            use_cache=False,
        )
    )
    assert report.error is None
    assert report.value > 0
    assert _counter("engine.backend.fallback") == before + 1


def test_backend_counters_track_resolution():
    inst = _instance_for("knapsack", "greedy", seed=3)
    before_py = _counter("engine.backend.python")
    before_np = _counter("engine.backend.numpy")
    solve(
        SolveRequest(
            instance=inst,
            family="knapsack",
            algorithm="greedy",
            backend="python",
            use_cache=False,
        )
    )
    solve(
        SolveRequest(
            instance=inst,
            family="knapsack",
            algorithm="greedy",
            backend="numpy",
            use_cache=False,
        )
    )
    assert _counter("engine.backend.python") == before_py + 1
    assert _counter("engine.backend.numpy") == before_np + 1


def test_solve_greedy_backend_param_direct():
    rng = np.random.default_rng(11)
    w = rng.uniform(0.05, 1.0, size=500)
    p = rng.uniform(0.05, 1.0, size=500)
    cap = float(0.25 * w.sum())
    py = solve_greedy(w, p, cap, backend="python")
    vec = solve_greedy(w, p, cap, backend="numpy")
    assert py.value == vec.value
    assert np.array_equal(py.selected, vec.selected)


# ---------------------------------------------------------------------------
# staleness guard
# ---------------------------------------------------------------------------


def test_compile_memo_staleness_guard():
    clear_caches()
    inst = gen.uniform_angles(n=30, k=2, seed=9)
    inst.compile()
    # Break the immutability contract on purpose.
    inst.thetas.setflags(write=True)
    inst.thetas[0] += 0.125
    with pytest.raises(RuntimeError, match="mutated"):
        inst.compile()


def test_compile_memo_staleness_guard_catches_permutation():
    # The fingerprint is position-weighted, so a permutation (same sums)
    # must still be caught.
    inst = gen.uniform_angles(n=30, k=2, seed=10)
    inst.compile()
    inst.demands.setflags(write=True)
    inst.demands[:] = inst.demands[::-1].copy()
    with pytest.raises(RuntimeError, match="mutated"):
        inst.compile()
