"""Tests for the insertion heuristic (repro.packing.insertion)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model import generators as gen
from repro.packing.insertion import solve_insertion
from repro.packing.multi import solve_non_overlapping_dp

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


class TestInsertionBasics:
    def test_requires_uniform_antennas(self):
        inst = gen.mixed_antenna_angles(n=20, seed=0)
        with pytest.raises(ValueError):
            solve_insertion(inst, GREEDY)

    def test_empty(self):
        inst = AngleInstance(
            thetas=np.empty(0), demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        assert solve_insertion(inst, EXACT).value(inst) == 0.0

    def test_single_cluster(self):
        inst = AngleInstance(
            thetas=np.array([0.1, 0.2, 0.3]),
            demands=np.ones(3),
            antennas=(AntennaSpec(rho=1.0, capacity=5.0),),
        )
        sol = solve_insertion(inst, EXACT)
        sol.verify(inst, require_disjoint=True)
        assert sol.value(inst) == pytest.approx(3.0)

    def test_two_separated_clusters(self):
        thetas = np.concatenate([np.linspace(0, 0.2, 4), np.linspace(3, 3.2, 4)])
        inst = AngleInstance(
            thetas=thetas,
            demands=np.ones(8),
            antennas=tuple(AntennaSpec(rho=0.5, capacity=10.0) for _ in range(2)),
        )
        sol = solve_insertion(inst, EXACT)
        sol.verify(inst, require_disjoint=True)
        assert sol.value(inst) == pytest.approx(8.0)

    def test_never_uses_more_than_k(self):
        inst = gen.uniform_angles(n=40, k=2, seed=1)
        sol = solve_insertion(inst, GREEDY)
        active = {int(j) for j in sol.assignment if j >= 0}
        assert len(active) <= 2


class TestInsertionVsDp:
    @pytest.mark.parametrize("seed", range(8))
    def test_disjoint_and_bounded_by_dp(self, seed):
        inst = gen.clustered_angles(n=30, k=3, seed=seed)
        ins = solve_insertion(inst, EXACT, boundary_fill=False)
        ins.verify(inst, require_disjoint=True)
        dp = solve_non_overlapping_dp(inst, EXACT, boundary_fill=False).value(inst)
        assert ins.value(inst) <= dp + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_tracks_dp_closely_on_random_families(self, seed):
        inst = gen.clustered_angles(n=30, k=3, seed=seed)
        ins = solve_insertion(inst, EXACT).value(inst)
        dp = solve_non_overlapping_dp(inst, EXACT).value(inst)
        if dp > 0:
            assert ins >= 0.6 * dp  # loose empirical floor, see ablation A4

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(st.floats(min_value=0, max_value=TWO_PI - 1e-9),
                 min_size=1, max_size=12),
        st.floats(min_value=0.3, max_value=2.0),
        st.integers(min_value=1, max_value=3),
    )
    def test_property_feasible(self, thetas, rho, k):
        thetas = np.array(thetas)
        inst = AngleInstance(
            thetas=thetas,
            demands=np.ones(thetas.size),
            antennas=tuple(
                AntennaSpec(rho=rho, capacity=2.5) for _ in range(k)
            ),
        )
        sol = solve_insertion(inst, EXACT)
        assert sol.violations(inst, require_disjoint=True) == []
