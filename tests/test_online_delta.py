"""The online delta layer: bit-identity, invalidation, event grammar.

The contract under test (``docs/ONLINE.md``): after *every* event, a
:class:`~repro.online.delta.DeltaCompiledInstance` must be value-identical
to throwing the instance away and recompiling from scratch — not just the
raw arrays but the compiled views too (stable angle order, doubled prefix
sums, eligibility masks) and the content fingerprint.  A hypothesis
property drives random event streams through both paths and compares
bitwise at each step; explicit units pin the known-sharp corners
(duplicate-angle inserts, remove-then-re-add, profit/demand divergence).
Per-sector result-cache invalidation and the event dict grammar round out
the file.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.cache import RESULT_CACHE, fingerprint
from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance, InvalidInstanceError, SectorInstance, Station
from repro.online.delta import (
    AddCustomer,
    DeltaCompiledInstance,
    RemoveCustomer,
    UpdateDemand,
    event_from_dict,
    event_to_dict,
)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _angle_instance(thetas, demands, profits=None):
    return AngleInstance(
        thetas=np.asarray(thetas, dtype=np.float64),
        demands=np.asarray(demands, dtype=np.float64),
        profits=None if profits is None else np.asarray(profits, dtype=np.float64),
        antennas=(AntennaSpec(rho=1.2, capacity=10.0),
                  AntennaSpec(rho=0.7, capacity=4.0)),
    )


def _sector_instance(positions, demands, profits=None):
    stations = (
        Station(position=(0.0, 0.0),
                antennas=(AntennaSpec(rho=np.pi / 2, capacity=8.0, radius=3.0),)),
        Station(position=(4.0, 0.0),
                antennas=(AntennaSpec(rho=np.pi, capacity=6.0, radius=2.5),)),
    )
    positions = np.asarray(positions, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    return SectorInstance(
        positions=positions, demands=demands,
        profits=None if profits is None else np.asarray(profits, dtype=np.float64),
        stations=stations,
    )


def _bitwise(a: np.ndarray, b: np.ndarray) -> bool:
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


def _assert_angle_identity(delta, ref_inst):
    """Delta generation == fresh compile of ``ref_inst``, bit for bit."""
    fresh = ref_inst.compile()
    inst, view = delta.instance, delta.compiled
    assert _bitwise(inst.thetas, ref_inst.thetas)
    assert _bitwise(inst.demands, ref_inst.demands)
    assert _bitwise(inst.profits, ref_inst.profits)
    assert _bitwise(view.order, fresh.order)
    assert _bitwise(view.sorted_thetas, fresh.sorted_thetas)
    assert _bitwise(view.rank_of_original, fresh.rank_of_original)
    assert _bitwise(view.demand_prefix, fresh.demand_prefix)
    assert _bitwise(view.profit_prefix, fresh.profit_prefix)
    assert fingerprint(inst) == fingerprint(ref_inst)
    # The patched view must be installed as the instance's compile memo
    # with a matching staleness token — compile() returns it, no raise.
    assert inst.compile() is view


def _assert_sector_identity(delta, ref_inst):
    fresh = ref_inst.compile()
    fresh.ensure_stations()
    inst, view = delta.instance, delta.compiled
    assert _bitwise(inst.positions, ref_inst.positions)
    assert _bitwise(inst.demands, ref_inst.demands)
    assert _bitwise(inst.profits, ref_inst.profits)
    for s in range(len(ref_inst.stations)):
        pv, fv = view.station(s), fresh.station(s)
        assert _bitwise(pv.thetas, fv.thetas)
        assert _bitwise(pv.rs, fv.rs)
        assert _bitwise(pv._angles.order, fv._angles.order)
        assert _bitwise(pv._angles.sorted_thetas, fv._angles.sorted_thetas)
        for radius, mask in pv._masks.items():
            assert _bitwise(mask, fv.fit_mask(radius))
    for patched_part, fresh_part in zip(view.eligibility(), fresh.eligibility()):
        for pa, fa in zip(patched_part, fresh_part):
            assert _bitwise(pa, fa)
    assert fingerprint(inst) == fingerprint(ref_inst)
    assert inst.compile() is view


# ----------------------------------------------------------------------
# Hypothesis: random event streams, identity after every event
# ----------------------------------------------------------------------
_theta = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9,
                   allow_nan=False, allow_infinity=False)
_pos = st.floats(min_value=0.2, max_value=20.0,
                 allow_nan=False, allow_infinity=False)


@st.composite
def _angle_stream(draw):
    n0 = draw(st.integers(min_value=1, max_value=8))
    thetas = [draw(_theta) for _ in range(n0)]
    demands = [draw(_pos) for _ in range(n0)]
    shared = draw(st.booleans())
    profits = None if shared else [draw(_pos) for _ in range(n0)]
    events = draw(st.lists(
        st.one_of(
            st.tuples(st.just("add"), _theta, _pos),
            st.tuples(st.just("add-dup"), st.integers(min_value=0), _pos),
            st.tuples(st.just("remove"), st.integers(min_value=0)),
            st.tuples(st.just("update"), st.integers(min_value=0), _pos,
                      st.sampled_from(["both", "demand", "profit"])),
        ),
        min_size=1, max_size=10,
    ))
    return thetas, demands, profits, events


@SLOW
@given(_angle_stream())
def test_random_angle_streams_match_fresh_compile(stream):
    thetas, demands, profits, raw_events = stream
    ref_thetas = list(thetas)
    ref_demands = list(demands)
    ref_profits = list(profits) if profits is not None else list(demands)
    delta = DeltaCompiledInstance(_angle_instance(thetas, demands, profits))
    for spec in raw_events:
        kind = spec[0]
        n = len(ref_thetas)
        if kind == "add":
            _, theta, demand = spec
            delta.apply(AddCustomer(demand=demand, theta=theta))
            ref_thetas.append(theta)
            ref_demands.append(demand)
            ref_profits.append(demand)
        elif kind == "add-dup":
            # Insert at an *existing* angle: exercises stable-sort ties.
            _, i, demand = spec
            theta = ref_thetas[i % n]
            delta.apply(AddCustomer(demand=demand, theta=theta))
            ref_thetas.append(theta)
            ref_demands.append(demand)
            ref_profits.append(demand)
        elif kind == "remove":
            if n == 1:
                continue  # keep the instance non-empty
            _, i = spec
            i %= n
            delta.apply(RemoveCustomer(index=i))
            del ref_thetas[i], ref_demands[i], ref_profits[i]
        else:
            _, i, value, which = spec
            i %= n
            if which == "both":
                delta.apply(UpdateDemand(index=i, demand=value, profit=value))
                ref_demands[i] = value
                ref_profits[i] = value
            elif which == "demand":
                delta.apply(UpdateDemand(index=i, demand=value))
                ref_demands[i] = value
            else:
                delta.apply(UpdateDemand(index=i, profit=value))
                ref_profits[i] = value
        _assert_angle_identity(
            delta, _angle_instance(ref_thetas, ref_demands, ref_profits)
        )


# ----------------------------------------------------------------------
# Explicit corners
# ----------------------------------------------------------------------
class TestAngleCorners:
    def test_duplicate_angle_insert_lands_after_ties(self):
        # Three customers at the same angle; a fourth inserted at that
        # angle must sort after all of them (stable argsort puts the
        # largest original index last within a tie run).
        delta = DeltaCompiledInstance(
            _angle_instance([1.0, 1.0, 1.0, 2.0], [1.0, 2.0, 3.0, 4.0])
        )
        delta.apply(AddCustomer(demand=5.0, theta=1.0))
        ref = _angle_instance([1.0, 1.0, 1.0, 2.0, 1.0],
                              [1.0, 2.0, 3.0, 4.0, 5.0])
        _assert_angle_identity(delta, ref)
        assert list(delta.compiled.order) == [0, 1, 2, 4, 3]

    def test_remove_then_re_add_same_angle(self):
        delta = DeltaCompiledInstance(
            _angle_instance([0.5, 1.5, 1.5, 2.5], [1.0, 2.0, 3.0, 4.0])
        )
        delta.apply(RemoveCustomer(index=1))
        _assert_angle_identity(
            delta, _angle_instance([0.5, 1.5, 2.5], [1.0, 3.0, 4.0])
        )
        delta.apply(AddCustomer(demand=2.0, theta=1.5))
        _assert_angle_identity(
            delta, _angle_instance([0.5, 1.5, 2.5, 1.5], [1.0, 3.0, 4.0, 2.0])
        )

    def test_theta_normalized_like_the_constructor(self):
        delta = DeltaCompiledInstance(_angle_instance([1.0], [1.0]))
        delta.apply(AddCustomer(demand=1.0, theta=-1.0))  # wraps to 2pi - 1
        _assert_angle_identity(delta, _angle_instance([1.0, -1.0], [1.0, 1.0]))

    def test_profit_divergence_breaks_sharing_correctly(self):
        # Starts on the shared (profits is demands) fast path, then an
        # update splits profit from demand; identity must hold through
        # the transition and afterwards.
        delta = DeltaCompiledInstance(_angle_instance([0.1, 0.9, 2.0],
                                                      [1.0, 2.0, 3.0]))
        delta.apply(UpdateDemand(index=1, profit=7.0))
        _assert_angle_identity(
            delta,
            _angle_instance([0.1, 0.9, 2.0], [1.0, 2.0, 3.0], [1.0, 7.0, 3.0]),
        )
        delta.apply(AddCustomer(demand=4.0, theta=1.5))
        _assert_angle_identity(
            delta,
            _angle_instance([0.1, 0.9, 2.0, 1.5], [1.0, 2.0, 3.0, 4.0],
                            [1.0, 7.0, 3.0, 4.0]),
        )

    def test_bad_events_raise_without_corrupting(self):
        delta = DeltaCompiledInstance(_angle_instance([1.0, 2.0], [1.0, 1.0]))
        with pytest.raises(InvalidInstanceError):
            delta.apply(RemoveCustomer(index=5))
        with pytest.raises(InvalidInstanceError):
            delta.apply(AddCustomer(demand=-1.0, theta=0.5))
        with pytest.raises(InvalidInstanceError):
            delta.apply(UpdateDemand(index=0, demand=float("nan")))
        _assert_angle_identity(delta, _angle_instance([1.0, 2.0], [1.0, 1.0]))

    def test_events_applied_counts(self):
        delta = DeltaCompiledInstance(_angle_instance([1.0], [1.0]))
        summary = delta.apply([AddCustomer(demand=1.0, theta=2.0),
                               UpdateDemand(index=0, demand=2.0, profit=2.0)])
        assert summary["applied"] == 2
        assert summary["n"] == 2
        assert delta.events_applied == 2


# ----------------------------------------------------------------------
# Sector kind
# ----------------------------------------------------------------------
class TestSectorDelta:
    def _seed(self):
        positions = [[1.0, 0.5], [3.0, 0.5], [4.5, -0.5], [0.5, -1.0]]
        demands = [1.0, 2.0, 3.0, 4.0]
        return _sector_instance(positions, demands)

    def test_stream_matches_fresh_compile(self):
        delta = DeltaCompiledInstance(self._seed())
        # Materialize reach masks so the patched path must maintain them.
        for s in range(2):
            view = delta.compiled.station(s)
            for a in delta.instance.stations[s].antennas:
                view.fit_mask(a.radius)
        ref_pos = [[1.0, 0.5], [3.0, 0.5], [4.5, -0.5], [0.5, -1.0]]
        ref_dem = [1.0, 2.0, 3.0, 4.0]
        ref_pro = list(ref_dem)

        delta.apply(AddCustomer(demand=1.5, position=(2.0, 1.0)))
        ref_pos.append([2.0, 1.0]); ref_dem.append(1.5); ref_pro.append(1.5)
        _assert_sector_identity(delta, _sector_instance(ref_pos, ref_dem, ref_pro))

        delta.apply(RemoveCustomer(index=1))
        del ref_pos[1], ref_dem[1], ref_pro[1]
        _assert_sector_identity(delta, _sector_instance(ref_pos, ref_dem, ref_pro))

        delta.apply(UpdateDemand(index=0, demand=9.0, profit=2.0))
        ref_dem[0] = 9.0; ref_pro[0] = 2.0
        _assert_sector_identity(delta, _sector_instance(ref_pos, ref_dem, ref_pro))

    def test_add_requires_position_not_theta(self):
        delta = DeltaCompiledInstance(self._seed())
        with pytest.raises(ValueError):
            delta.apply(AddCustomer(demand=1.0, theta=0.5))


# ----------------------------------------------------------------------
# Per-sector result-cache invalidation
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_only_windows_containing_touched_angles_evict(self):
        delta = DeltaCompiledInstance(
            _angle_instance([0.2, 1.0, 3.0, 5.0], [1.0, 1.0, 1.0, 1.0])
        )
        keys = []
        for i, (start, width) in enumerate(
            [(0.0, 0.5), (0.9, 0.3), (2.8, 0.5), (4.5, 1.0)]
        ):
            key = ("delta-test", i)
            RESULT_CACHE.put(key, f"result-{i}")
            delta.register_window(key, start, width)
            keys.append(key)
        # Touch theta=1.0 (inside window 1 only).
        summary = delta.apply(UpdateDemand(index=1, demand=2.0, profit=2.0))
        assert summary["invalidated"] == 1
        assert summary["retained"] == 3
        assert RESULT_CACHE.get(keys[1]) is None
        for i in (0, 2, 3):
            assert RESULT_CACHE.get(keys[i]) == f"result-{i}"
        # The evicted key is deregistered; the survivors are still tagged.
        assert keys[1] not in delta.registered_windows()
        assert keys[0] in delta.registered_windows()

    def test_window_wraps_across_zero(self):
        delta = DeltaCompiledInstance(_angle_instance([0.05], [1.0]))
        key = ("delta-test", "wrap")
        RESULT_CACHE.put(key, "warm")
        delta.register_window(key, TWO_PI - 0.1, 0.3)  # covers [2pi-0.1, 0.2)
        summary = delta.apply(UpdateDemand(index=0, demand=2.0, profit=2.0))
        assert summary["invalidated"] == 1
        assert RESULT_CACHE.get(key) is None

    def test_lru_evict_by_key_semantics(self):
        # LruCache.evict is the primitive the window invalidation rides
        # on: present -> dropped and True, absent -> False, idempotent,
        # and untouched keys keep their values.
        RESULT_CACHE.put(("evict-test", "a"), "va")
        RESULT_CACHE.put(("evict-test", "b"), "vb")
        assert RESULT_CACHE.evict(("evict-test", "a")) is True
        assert RESULT_CACHE.get(("evict-test", "a")) is None
        assert RESULT_CACHE.evict(("evict-test", "a")) is False
        assert RESULT_CACHE.evict(("evict-test", "never-stored")) is False
        assert RESULT_CACHE.get(("evict-test", "b")) == "vb"

    def test_wrapping_window_hit_from_either_side_of_the_seam(self):
        # A window [2pi-0.2, 2pi) u [0, 0.2) registered across the seam
        # must evict for touched angles on *both* sides of 2pi -> 0, and
        # a window of the same width away from the seam must survive.
        thetas = [0.1, TWO_PI - 0.1, math.pi]
        for touched in (0, 1):
            delta = DeltaCompiledInstance(
                _angle_instance(thetas, [1.0, 1.0, 1.0])
            )
            wrap_key = ("delta-test", "wrap", touched)
            far_key = ("delta-test", "far", touched)
            RESULT_CACHE.put(wrap_key, "warm-wrap")
            RESULT_CACHE.put(far_key, "warm-far")
            delta.register_window(wrap_key, TWO_PI - 0.2, 0.4)
            delta.register_window(far_key, math.pi - 0.2, 0.4)
            summary = delta.apply(
                UpdateDemand(index=touched, demand=2.0, profit=2.0)
            )
            assert summary["invalidated"] == 1, touched
            assert RESULT_CACHE.get(wrap_key) is None, touched
            assert RESULT_CACHE.get(far_key) == "warm-far", touched
            assert wrap_key not in delta.registered_windows()
            assert far_key in delta.registered_windows()

    def test_wrapping_window_retains_far_angle(self):
        # The complement case: a touched angle near pi must not evict the
        # seam-spanning window.
        delta = DeltaCompiledInstance(
            _angle_instance([math.pi], [1.0])
        )
        key = ("delta-test", "wrap-retained")
        RESULT_CACHE.put(key, "warm")
        delta.register_window(key, TWO_PI - 0.2, 0.4)
        summary = delta.apply(UpdateDemand(index=0, demand=2.0, profit=2.0))
        assert summary["invalidated"] == 0
        assert RESULT_CACHE.get(key) == "warm"
        assert key in delta.registered_windows()

    def test_publish_seeds_the_compile_cache(self):
        from repro.engine.cache import COMPILE_CACHE

        delta = DeltaCompiledInstance(_angle_instance([1.0, 2.0], [1.0, 1.0]))
        delta.apply(AddCustomer(demand=1.0, theta=0.3))
        fp = delta.publish()
        assert COMPILE_CACHE.get(("compiled", fp)) is delta.compiled


# ----------------------------------------------------------------------
# Event grammar (wire dicts)
# ----------------------------------------------------------------------
class TestEventGrammar:
    def test_round_trip_all_types(self):
        events = [
            AddCustomer(demand=2.0, theta=0.5),
            AddCustomer(demand=1.0, position=(1.0, -2.0), profit=3.0),
            RemoveCustomer(index=4),
            UpdateDemand(index=2, demand=5.0),
            UpdateDemand(index=0, profit=1.5),
        ]
        for event in events:
            assert event_from_dict(event_to_dict(event)) == event

    def test_unknown_type_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"type": "teleport_customer"})

    def test_missing_and_extra_fields_raise_value_error(self):
        with pytest.raises(ValueError):
            event_from_dict({"type": "remove_customer"})  # no index
        with pytest.raises(ValueError):
            event_from_dict({"type": "add_customer", "demand": 1.0,
                             "theta": 0.5, "frobnicate": True})
        with pytest.raises(ValueError):
            event_from_dict("not a dict")
