"""Tests for solution objects and the independent feasibility checker."""

import math

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance, SectorInstance, Station
from repro.model.solution import (
    AngleSolution,
    FeasibilityError,
    FractionalSolution,
    SectorSolution,
)


def make_instance():
    """4 customers at 0, .5, 3, 3.2; two antennas width 1, capacity 3."""
    return AngleInstance(
        thetas=np.array([0.0, 0.5, 3.0, 3.2]),
        demands=np.array([1.0, 2.0, 2.0, 2.0]),
        antennas=(
            AntennaSpec(rho=1.0, capacity=3.0),
            AntennaSpec(rho=1.0, capacity=3.0),
        ),
    )


class TestAngleSolution:
    def test_empty_is_feasible(self):
        inst = make_instance()
        sol = AngleSolution.empty(inst)
        assert sol.violations(inst) == []
        assert sol.value(inst) == 0.0
        assert sol.served_count() == 0

    def test_valid_solution(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.array([0.0, 3.0]),
            assignment=np.array([0, 0, 1, -1]),
        )
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(5.0)
        assert sol.served_demand(inst) == pytest.approx(5.0)
        assert sol.served_count() == 3

    def test_loads(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.array([0.0, 3.0]),
            assignment=np.array([0, 0, 1, -1]),
        )
        assert sol.loads(inst).tolist() == [3.0, 2.0]

    def test_coverage_violation_detected(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.array([0.0, 3.0]),
            assignment=np.array([0, 0, 0, -1]),  # customer 2 not in arc 0
        )
        v = sol.violations(inst)
        assert any("not in arc" in s for s in v)
        with pytest.raises(FeasibilityError):
            sol.verify(inst)

    def test_capacity_violation_detected(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.array([3.0, 0.0]),
            assignment=np.array([-1, -1, 0, 0]),  # load 4 > 3 on antenna 0
        )
        v = sol.violations(inst)
        assert any("overloaded" in s for s in v)

    def test_wrong_shapes_detected(self):
        inst = make_instance()
        sol = AngleSolution(orientations=np.zeros(1), assignment=np.zeros(4, int))
        assert sol.violations(inst)
        sol2 = AngleSolution(orientations=np.zeros(2), assignment=np.zeros(3, int))
        assert sol2.violations(inst)

    def test_bad_antenna_index_detected(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.zeros(2), assignment=np.array([5, -1, -1, -1])
        )
        assert any(">= k" in s for s in sol.violations(inst))
        sol2 = AngleSolution(
            orientations=np.zeros(2), assignment=np.array([-2, -1, -1, -1])
        )
        assert any("below -1" in s for s in sol2.violations(inst))

    def test_require_disjoint(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.array([0.0, 0.5]),  # overlapping arcs, both active
            assignment=np.array([0, 1, -1, -1]),
        )
        assert sol.violations(inst) == []
        assert any("overlap" in s for s in sol.violations(inst, require_disjoint=True))

    def test_require_disjoint_ignores_idle_antennas(self):
        inst = make_instance()
        sol = AngleSolution(
            orientations=np.array([0.0, 0.5]),  # overlapping, but antenna 1 idle
            assignment=np.array([0, 0, -1, -1]),
        )
        assert sol.violations(inst, require_disjoint=True) == []

    def test_arcs(self):
        inst = make_instance()
        sol = AngleSolution(orientations=np.array([1.0, 2.0]), assignment=np.full(4, -1))
        arcs = sol.arcs(inst)
        assert arcs[0].start == pytest.approx(1.0)
        assert arcs[1].width == pytest.approx(1.0)

    def test_profit_differs_from_demand(self):
        inst = AngleInstance(
            thetas=np.array([0.0, 0.1]),
            demands=np.array([1.0, 1.0]),
            profits=np.array([10.0, 1.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=1.0),),
        )
        sol = AngleSolution(orientations=np.zeros(1), assignment=np.array([0, -1]))
        assert sol.value(inst) == 10.0
        assert sol.served_demand(inst) == 1.0


class TestFractionalSolution:
    def test_feasible_split(self):
        inst = make_instance()
        frac = np.zeros((4, 2))
        frac[0, 0] = 1.0
        frac[1, 0] = 0.5
        sol = FractionalSolution(
            orientations=np.array([0.0, 3.0]), fractions=frac
        )
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(1.0 + 0.5 * 2.0)
        assert sol.loads(inst)[0] == pytest.approx(2.0)

    def test_row_sum_violation(self):
        inst = make_instance()
        frac = np.zeros((4, 2))
        frac[0] = [0.7, 0.7]
        sol = FractionalSolution(orientations=np.array([0.0, 0.0]), fractions=frac)
        assert any("> 1" in s for s in sol.violations(inst))

    def test_coverage_violation(self):
        inst = make_instance()
        frac = np.zeros((4, 2))
        frac[2, 0] = 0.5  # antenna 0 at orientation 0 does not cover theta=3
        sol = FractionalSolution(orientations=np.array([0.0, 3.0]), fractions=frac)
        assert any("outside its arc" in s for s in sol.violations(inst))

    def test_capacity_violation(self):
        inst = make_instance()
        frac = np.zeros((4, 2))
        frac[2, 0] = 1.0
        frac[3, 0] = 1.0  # load 4 > 3
        sol = FractionalSolution(orientations=np.array([3.0, 0.0]), fractions=frac)
        assert any("overloaded" in s for s in sol.violations(inst))

    def test_negative_fraction(self):
        inst = make_instance()
        frac = np.zeros((4, 2))
        frac[0, 0] = -0.5
        sol = FractionalSolution(orientations=np.array([0.0, 0.0]), fractions=frac)
        assert any("negative" in s for s in sol.violations(inst))

    def test_round_to_integral_feasible(self):
        inst = make_instance()
        frac = np.zeros((4, 2))
        frac[0, 0] = 1.0
        frac[1, 0] = 1.0
        frac[2, 1] = 0.9
        frac[3, 1] = 0.9
        sol = FractionalSolution(orientations=np.array([0.0, 3.0]), fractions=frac)
        integral = sol.round_to_integral(inst)
        integral.verify(inst)
        # rounding keeps full-fraction customers and at most one of 2/3
        assert integral.value(inst) >= 3.0

    def test_shape_violations(self):
        inst = make_instance()
        sol = FractionalSolution(orientations=np.zeros(2), fractions=np.zeros((3, 2)))
        assert sol.violations(inst)
        sol2 = FractionalSolution(orientations=np.zeros(1), fractions=np.zeros((4, 2)))
        assert sol2.violations(inst)


class TestSectorSolution:
    def make(self):
        st = Station(
            position=(0.0, 0.0),
            antennas=(AntennaSpec(rho=math.pi / 2, capacity=3.0, radius=5.0),),
        )
        inst = SectorInstance(
            positions=np.array([[1.0, 1.0], [-1.0, 1.0], [10.0, 0.0]]),
            demands=np.array([2.0, 2.0, 1.0]),
            stations=(st,),
        )
        return inst

    def test_empty(self):
        inst = self.make()
        sol = SectorSolution.empty(inst)
        assert sol.violations(inst) == []
        assert sol.value(inst) == 0.0

    def test_valid(self):
        inst = self.make()
        sol = SectorSolution(
            orientations=np.array([0.0]),
            assignment=np.array([0, -1, -1]),
        )
        sol.verify(inst)
        assert sol.value(inst) == 2.0
        assert sol.loads(inst).tolist() == [2.0]

    def test_out_of_sector_detected(self):
        inst = self.make()
        sol = SectorSolution(
            orientations=np.array([0.0]),
            assignment=np.array([-1, 0, -1]),  # (-1,1) has angle 3*pi/4 > pi/2
        )
        assert any("outside its sector" in s for s in sol.violations(inst))

    def test_out_of_radius_detected(self):
        inst = self.make()
        sol = SectorSolution(
            orientations=np.array([0.0]),
            assignment=np.array([-1, -1, 0]),  # r = 10 > 5
        )
        assert any("outside its sector" in s for s in sol.violations(inst))

    def test_capacity_detected(self):
        st = Station(
            position=(0.0, 0.0),
            antennas=(AntennaSpec(rho=TWO_PI, capacity=3.0, radius=5.0),),
        )
        inst = SectorInstance(
            positions=np.array([[1.0, 0.0], [0.0, 1.0]]),
            demands=np.array([2.0, 2.0]),
            stations=(st,),
        )
        sol = SectorSolution(
            orientations=np.array([0.0]), assignment=np.array([0, 0])
        )
        assert any("overloaded" in s for s in sol.violations(inst))
        with pytest.raises(FeasibilityError) as ei:
            sol.verify(inst)
        assert ei.value.violations
