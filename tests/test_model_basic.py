"""Tests for Customer, AntennaSpec, OrientedAntenna."""

import math

import pytest

from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec, OrientedAntenna
from repro.model.customer import Customer


class TestCustomer:
    def test_angular_customer(self):
        c = Customer(demand=2.0, theta=-1.0)
        assert c.is_angular
        assert 0 <= c.theta < TWO_PI
        assert c.profit == 2.0

    def test_planar_customer(self):
        c = Customer(demand=1.0, position=(1, 2))
        assert not c.is_angular
        assert c.position == (1.0, 2.0)

    def test_explicit_profit(self):
        c = Customer(demand=1.0, theta=0.0, profit=5.0)
        assert c.profit == 5.0

    def test_rejects_nonpositive_demand(self):
        with pytest.raises(ValueError):
            Customer(demand=0.0, theta=0.0)
        with pytest.raises(ValueError):
            Customer(demand=-1.0, theta=0.0)

    def test_rejects_nonpositive_profit(self):
        with pytest.raises(ValueError):
            Customer(demand=1.0, theta=0.0, profit=0.0)

    def test_rejects_both_coordinates(self):
        with pytest.raises(ValueError):
            Customer(demand=1.0, theta=0.0, position=(0, 0))

    def test_rejects_no_coordinates(self):
        with pytest.raises(ValueError):
            Customer(demand=1.0)

    def test_label_roundtrip(self):
        c = Customer(demand=1.0, theta=0.0, label="home")
        assert c.label == "home"


class TestAntennaSpec:
    def test_defaults(self):
        a = AntennaSpec(rho=1.0, capacity=5.0)
        assert math.isinf(a.radius)
        assert not a.is_omnidirectional

    def test_omnidirectional(self):
        a = AntennaSpec(rho=TWO_PI, capacity=1.0)
        assert a.is_omnidirectional

    def test_rho_clamped_to_two_pi(self):
        a = AntennaSpec(rho=TWO_PI + 1e-13, capacity=1.0)
        assert a.rho == TWO_PI

    def test_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            AntennaSpec(rho=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            AntennaSpec(rho=TWO_PI + 0.1, capacity=1.0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            AntennaSpec(rho=1.0, capacity=0.0)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            AntennaSpec(rho=1.0, capacity=1.0, radius=-1.0)

    def test_scaled_capacity(self):
        a = AntennaSpec(rho=1.0, capacity=2.0, name="x")
        b = a.scaled_capacity(2.0)
        assert b.capacity == 4.0
        assert b.name == "x"
        with pytest.raises(ValueError):
            a.scaled_capacity(0.0)


class TestOrientedAntenna:
    def test_arc(self):
        oa = AntennaSpec(rho=1.0, capacity=1.0).oriented(0.5)
        arc = oa.arc
        assert arc.start == pytest.approx(0.5)
        assert arc.width == pytest.approx(1.0)

    def test_sector_requires_finite_radius(self):
        oa = AntennaSpec(rho=1.0, capacity=1.0).oriented(0.0)
        with pytest.raises(ValueError):
            oa.sector((0.0, 0.0))

    def test_sector(self):
        oa = AntennaSpec(rho=1.0, capacity=1.0, radius=3.0).oriented(0.25)
        s = oa.sector((1.0, 1.0))
        assert s.radius == 3.0
        assert s.alpha == pytest.approx(0.25)
        assert s.apex == (1.0, 1.0)
