"""The supervised worker tier: shard routing, crash recovery, chaos drills.

Enforces the supervision contracts frozen in ``docs/SERVICE.md`` and the
service-level fault sites of ``docs/RESILIENCE.md``:

* consistent-hash shard routing is deterministic and sticky (repeat
  instances land on the same worker; a dead worker's keys spill to its
  ring sibling and return on recovery);
* the circuit breaker trips after consecutive failures, half-opens after
  the cooldown, and closes on probe success;
* :class:`repro.parallel.PipeWorker` surfaces every transport failure
  (timeout, EOF, corrupted frame) as one typed ``WorkerCrashed``;
* **the headline chaos drill**: with seed-deterministic worker SIGKILLs
  injected under load, every admitted request still answers status 0
  with a value identical to a chaos-free run, and
  ``service.supervisor.restarts`` > 0 is observed;
* blackholed and corrupted reply frames are healed by redispatch;
* with every worker down, ``ping``/``stats`` stay answerable and solves
  degrade to the in-process engine instead of failing.
"""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.engine import SolveRequest, clear_caches, solve
from repro.model import generators
from repro.obs.metrics import get_registry
from repro.parallel import PipeWorker, WorkerCrashed
from repro.resilience.chaos import ChaosPolicy
from repro.service import (
    STATUS_OK,
    CircuitBreaker,
    ServiceClient,
    ShardRing,
    SolverService,
    start_in_thread,
)
from repro.service.workers import describe_ring, shard_key


def _instances(count, n=12, k=2):
    return [generators.uniform_angles(n=n, k=k, seed=s) for s in range(count)]


def _counter(metrics: dict, name: str) -> int:
    return int(metrics.get(name, {}).get("value", 0))


# ----------------------------------------------------------------------
# ShardRing
# ----------------------------------------------------------------------
class TestShardRing:
    def test_owner_is_deterministic_and_total(self):
        ring = ShardRing([0, 1, 2])
        keys = [shard_key(inst) for inst in _instances(20)]
        owners = [ring.owner(key) for key in keys]
        assert owners == [ShardRing([0, 1, 2]).owner(k) for k in keys]
        assert set(owners) <= {0, 1, 2}
        # With 20 distinct keys and 64 vnodes each, every worker owns some.
        assert len(set(owners)) == 3

    def test_spill_and_return(self):
        """A dead worker's keys move to the ring sibling, then move back."""
        ring = ShardRing([0, 1, 2])
        key = shard_key(_instances(1)[0])
        full_order = ring.owners(key)
        primary = full_order[0]
        without_primary = [w for w in (0, 1, 2) if w != primary]
        spilled = ring.owner(key, available=without_primary)
        assert spilled == full_order[1]  # the natural sibling inherits
        assert ring.owner(key) == primary  # ...and the key returns

    def test_owners_orders_all_available_distinctly(self):
        ring = ShardRing([0, 1, 2, 3])
        order = ring.owners("some-key")
        assert sorted(order) == [0, 1, 2, 3]
        assert ring.owners("some-key", available=[2]) == [2]
        assert ring.owners("some-key", available=[]) == []

    def test_describe_ring_splits_load(self):
        ring = ShardRing([0, 1])
        counts = describe_ring(ring, [shard_key(i) for i in _instances(40)])
        assert sum(counts.values()) == 40
        assert all(c > 0 for c in counts.values())

    def test_shard_key_handles_knapsack_triples(self):
        key = shard_key(([1.0, 2.0], [3.0, 4.0], 2.5))
        assert key.startswith("repr:")
        assert key == shard_key(([1.0, 2.0], [3.0, 4.0], 2.5))


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # success resets the run
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_half_open_then_close_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.probe_due()
        clock[0] = 5.0
        assert breaker.state == "half_open" and breaker.probe_due()
        assert not breaker.allow()  # only the probe may touch it
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_failure_rearms_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0,
                                 clock=lambda: clock[0])
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.probe_due()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        clock[0] = 9.0
        assert breaker.state == "open"  # cooldown restarted at t=5
        clock[0] = 10.0
        assert breaker.state == "half_open"


# ----------------------------------------------------------------------
# ChaosPolicy service extensions
# ----------------------------------------------------------------------
class TestChaosReplySites:
    def test_decide_reply_is_deterministic(self):
        policy = ChaosPolicy(seed=3, kill_rate=0.3, blackhole_rate=0.3,
                             corrupt_rate=0.3, delay_rate=0.3)
        schedule = [policy.decide_reply("service.worker.0.gen1", i)
                    for i in range(50)]
        again = [policy.decide_reply("service.worker.0.gen1", i)
                 for i in range(50)]
        assert schedule == again
        assert set(schedule) <= {None, "kill", "blackhole", "corrupt", "delay"}
        assert any(v is not None for v in schedule)

    def test_generation_gets_a_fresh_stream(self):
        """Restarted workers must not replay their predecessor's kill."""
        policy = ChaosPolicy(seed=3, kill_rate=0.5)
        gen1 = [policy.decide_reply("service.worker.0.gen1", i)
                for i in range(40)]
        gen2 = [policy.decide_reply("service.worker.0.gen2", i)
                for i in range(40)]
        assert gen1 != gen2

    def test_certain_kill(self):
        policy = ChaosPolicy(kill_rate=1.0)
        assert policy.decide_reply("s", 0) == "kill"
        assert ChaosPolicy().decide_reply("s", 0) is None

    def test_from_spec_round_trip(self):
        policy = ChaosPolicy.from_spec("seed=7, kill_rate=0.2,delay_s=0.01")
        assert policy == ChaosPolicy(seed=7, kill_rate=0.2, delay_s=0.01)
        assert ChaosPolicy.from_spec("") == ChaosPolicy()

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown chaos field"):
            ChaosPolicy.from_spec("frobnicate=1")
        with pytest.raises(ValueError, match="key=value"):
            ChaosPolicy.from_spec("kill_rate")
        with pytest.raises(ValueError, match="non-numeric"):
            ChaosPolicy.from_spec("kill_rate=lots")
        with pytest.raises(ValueError, match="must be in"):
            ChaosPolicy.from_spec("kill_rate=1.5")


# ----------------------------------------------------------------------
# PipeWorker transport
# ----------------------------------------------------------------------
def _scripted_worker(conn):
    """Test worker: echoes, sleeps, dies, or replies garbage on demand."""
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            return
        seq, op, payload = pickle.loads(raw)
        if op == "stop":
            conn.send_bytes(pickle.dumps((seq, "ok", None)))
            return
        if op == "die":
            os._exit(3)
        if op == "sleep":
            time.sleep(payload)
            conn.send_bytes(pickle.dumps((seq, "ok", "slept")))
            continue
        if op == "garbage":
            conn.send_bytes(b"\x00 not a pickle frame")
            continue
        conn.send_bytes(pickle.dumps((seq, "ok", payload)))


class TestPipeWorker:
    def _spawn(self):
        return PipeWorker(_scripted_worker,
                          context=multiprocessing.get_context("fork"))

    def test_request_round_trip_and_stop(self):
        worker = self._spawn()
        try:
            assert worker.alive()
            assert worker.request("echo", {"x": 1}, timeout_s=10.0) == {"x": 1}
        finally:
            worker.stop()
        assert not worker.alive()

    def test_timeout_is_worker_crashed_and_stale_reply_discarded(self):
        worker = self._spawn()
        try:
            with pytest.raises(WorkerCrashed, match="no reply"):
                worker.request("sleep", 0.5, timeout_s=0.05)
            # The late reply for the timed-out seq must be discarded, not
            # delivered to the next caller.
            assert worker.request("echo", "fresh", timeout_s=10.0) == "fresh"
        finally:
            worker.stop()

    def test_dead_worker_is_worker_crashed(self):
        worker = self._spawn()
        try:
            with pytest.raises(WorkerCrashed):
                worker.request("die", timeout_s=10.0)
        finally:
            worker.stop()

    def test_corrupt_frame_is_worker_crashed(self):
        worker = self._spawn()
        try:
            with pytest.raises(WorkerCrashed, match="corrupted"):
                worker.request("garbage", timeout_s=10.0)
        finally:
            worker.stop()


# ----------------------------------------------------------------------
# Supervised service end to end
# ----------------------------------------------------------------------
class TestSupervisedService:
    def test_chaos_requires_workers(self):
        with pytest.raises(ValueError, match="requires"):
            SolverService(chaos=ChaosPolicy(kill_rate=0.5))

    def test_shard_affinity_across_bursts(self):
        """The same instances route to the same workers, burst after burst."""
        clear_caches()
        insts = _instances(8)
        handle = start_in_thread(port=0, workers=2, max_batch=4)
        try:
            with ServiceClient(port=handle.port) as client:
                def per_worker_dispatches():
                    stats = client.stats()["workers"]["workers"]
                    return {w["id"]: w["dispatches"] for w in stats}

                client.solve_batch(insts, algorithm="greedy", use_cache=False)
                first = per_worker_dispatches()
                client.solve_batch(insts, algorithm="greedy", use_cache=False)
                second = per_worker_dispatches()
                deltas = {wid: second[wid] - first[wid] for wid in first}
                assert deltas == first  # identical split = sticky shards
                assert sum(first.values()) == 8
        finally:
            handle.stop()

    def test_kill_chaos_value_identity_and_restarts(self):
        """The acceptance drill: seeded SIGKILLs under load lose nothing."""
        clear_caches()
        insts = _instances(40)
        baseline = [
            solve(SolveRequest(instance=i, algorithm="greedy",
                               use_cache=False)).value
            for i in insts
        ]
        before = get_registry().snapshot()
        chaos = ChaosPolicy(seed=11, kill_rate=0.35)
        handle = start_in_thread(
            port=0, workers=2, max_batch=4, chaos=chaos,
            supervisor_options={
                "call_timeout_s": 30.0,
                "probe_interval_s": 0.1,
                "restart_backoff_s": 0.05,
            },
        )
        try:
            with ServiceClient(port=handle.port, timeout_s=300.0) as client:
                responses = client.solve_batch(
                    insts, algorithm="greedy", use_cache=False
                )
                assert [r["status"] for r in responses] == [STATUS_OK] * 40
                assert [r["value"] for r in responses] == baseline
                metrics = client.stats()["metrics"]
        finally:
            handle.stop()
        restarts = (_counter(metrics, "service.supervisor.restarts")
                    - _counter(before, "service.supervisor.restarts"))
        failures = (_counter(metrics, "service.worker.failures")
                    - _counter(before, "service.worker.failures"))
        assert restarts > 0, "chaos never killed a worker; drill is vacuous"
        assert failures > 0

    def test_blackhole_and_corrupt_replies_are_healed(self):
        clear_caches()
        insts = _instances(16)
        baseline = [
            solve(SolveRequest(instance=i, algorithm="greedy",
                               use_cache=False)).value
            for i in insts
        ]
        chaos = ChaosPolicy(seed=5, blackhole_rate=0.3, corrupt_rate=0.3)
        handle = start_in_thread(
            port=0, workers=2, max_batch=4, chaos=chaos,
            supervisor_options={
                "call_timeout_s": 0.75,
                "probe_interval_s": 0.1,
                "restart_backoff_s": 0.05,
            },
        )
        try:
            with ServiceClient(port=handle.port, timeout_s=300.0) as client:
                responses = client.solve_batch(
                    insts, algorithm="greedy", use_cache=False
                )
                assert [r["status"] for r in responses] == [STATUS_OK] * 16
                assert [r["value"] for r in responses] == baseline
                metrics = client.stats()["metrics"]
                assert _counter(metrics, "service.worker.failures") > 0
        finally:
            handle.stop()

    def test_degraded_mode_keeps_answering_with_all_workers_down(self):
        """SIGKILL every worker: ping/stats/solve must all still answer."""
        clear_caches()
        handle = start_in_thread(
            port=0, workers=2,
            supervisor_options={
                # A sleepy probe loop holds the workers down long enough
                # for the degraded-path assertions to be deterministic.
                "probe_interval_s": 1.0,
                "restart_backoff_s": 0.2,
                "call_timeout_s": 5.0,
            },
        )
        try:
            with ServiceClient(port=handle.port, timeout_s=120.0) as client:
                workers = client.stats()["workers"]["workers"]
                pids = [w["pid"] for w in workers]
                assert all(isinstance(p, int) for p in pids)
                for pid in pids:
                    os.kill(pid, signal.SIGKILL)
                # Inline ops never depend on the pool.
                assert client.ping()["status"] == STATUS_OK
                stats = client.stats()
                assert stats["status"] == STATUS_OK
                # Solves degrade to the in-process engine, not to errors.
                response = client.solve(_instances(1)[0], algorithm="greedy",
                                        use_cache=False)
                assert response["status"] == STATUS_OK
                metrics = client.stats()["metrics"]
                assert _counter(metrics, "service.worker.degraded") >= 1
                # The supervisor heals the pool underneath.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    described = client.stats()["workers"]
                    if described["alive"] == 2:
                        break
                    time.sleep(0.2)
                assert described["alive"] == 2, "workers never restarted"
                restarted = client.solve(_instances(1)[0], algorithm="greedy")
                assert restarted["status"] == STATUS_OK
        finally:
            handle.stop()

    def test_stats_reports_worker_tier(self):
        handle = start_in_thread(port=0, workers=1)
        try:
            with ServiceClient(port=handle.port) as client:
                client.solve(_instances(1)[0], algorithm="greedy")
                described = client.stats()["workers"]
                assert described["count"] == 1
                assert described["chaos"] is False
                (worker,) = described["workers"]
                for field in ("id", "pid", "alive", "generation", "breaker",
                              "dispatches", "failures", "restarts", "latency"):
                    assert field in worker, field
                assert worker["alive"] is True
                assert worker["breaker"] == "closed"
                assert worker["latency"]["type"] == "histogram"
                metrics = client.stats()["metrics"]
                for name in ("service.worker.dispatches",
                             "service.worker.failures",
                             "service.worker.redispatches",
                             "service.worker.degraded",
                             "service.worker.latency",
                             "service.supervisor.restarts",
                             "service.supervisor.breaker_opens",
                             "service.supervisor.alive"):
                    assert name in metrics, name
        finally:
            handle.stop()
