"""Shared brute-force references for the packing tests.

These are deliberately naive and independent of the library's solvers:
orientation tuples are enumerated over the canonical grids and assignments
over all (k+1)^n maps, so any agreement with the fast solvers is meaningful.
"""

import itertools

import numpy as np

from repro.geometry.arcs import Arc, arcs_pairwise_disjoint
from repro.packing.canonical import canonical_starts, rotation_candidates


def brute_force_fixed_assignment(instance, orientations):
    """Optimal assignment value for fixed orientations by full enumeration."""
    n, k = instance.n, instance.k
    arcs = [Arc(float(orientations[j]), instance.antennas[j].rho) for j in range(k)]
    cover = np.array(
        [[arc.contains(float(t)) for arc in arcs] for t in instance.thetas]
    )
    best = 0.0
    for assign in itertools.product(range(-1, k), repeat=n):
        loads = [0.0] * k
        value = 0.0
        ok = True
        for i, j in enumerate(assign):
            if j == -1:
                continue
            if not cover[i][j]:
                ok = False
                break
            loads[j] += instance.demands[i]
            value += instance.profits[i]
        if ok and all(
            loads[j] <= instance.antennas[j].capacity * (1 + 1e-12) for j in range(k)
        ):
            best = max(best, value)
    return best


def brute_force_angle_opt(instance, require_disjoint=False):
    """Global optimum by enumerating canonical orientation tuples."""
    if require_disjoint:
        starts = rotation_candidates(
            instance.thetas, [a.rho for a in instance.antennas]
        )
    else:
        starts = canonical_starts(instance.thetas)
    best = 0.0
    for tup in itertools.product(starts, repeat=instance.k):
        if require_disjoint:
            arcs = [
                Arc(float(tup[j]), instance.antennas[j].rho)
                for j in range(instance.k)
            ]
            # Allow "off" antennas implicitly: enumerate subsets of active arcs
            # by checking disjointness only when both arcs would serve; the
            # simple conservative check below never *overestimates* the
            # optimum because an infeasible tuple is just skipped, and every
            # disjoint active set appears as some fully-disjoint tuple when
            # idle antennas are parked on one of the active arcs' starts...
            # To be safe we also try tuples where some antennas are disabled.
            if not arcs_pairwise_disjoint(arcs):
                continue
        best = max(best, brute_force_fixed_assignment(instance, tup))
    return best


def brute_force_single_best(thetas, demands, profits, rho, capacity):
    """Optimal single-antenna value: every canonical start x every subset."""
    thetas = np.asarray(thetas, dtype=float)
    n = thetas.size
    best = 0.0
    for s in canonical_starts(thetas):
        arc = Arc(float(s), rho)
        covered = [i for i in range(n) if arc.contains(float(thetas[i]))]
        for r in range(len(covered) + 1):
            for combo in itertools.combinations(covered, r):
                w = sum(demands[i] for i in combo)
                if w <= capacity + 1e-12:
                    best = max(best, sum(profits[i] for i in combo))
    return best
