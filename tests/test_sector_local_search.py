"""Tests for the 2-D local search (improve_sector_solution)."""

import numpy as np
import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.model.antenna import AntennaSpec
from repro.model.instance import SectorInstance, Station
from repro.model.solution import SectorSolution
from repro.packing.sectors import (
    improve_sector_solution,
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


class TestImproveSectorSolution:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_decreases(self, seed):
        inst = gen.clustered_towns(n=60, seed=seed)
        base = solve_sector_greedy(inst, GREEDY)
        improved = improve_sector_solution(inst, base, GREEDY)
        improved.verify(inst)
        assert improved.value(inst) >= base.value(inst) - 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_improves_the_baseline(self, seed):
        """The nearest-station baseline leaves cross-station value on the
        table; local search should recover some of it (or at least tie)."""
        inst = gen.grid_city(n=80, grid=2, capacity_fraction=0.05, seed=seed)
        base = solve_sector_independent(inst, GREEDY)
        improved = improve_sector_solution(inst, base, GREEDY)
        improved.verify(inst)
        assert improved.value(inst) >= base.value(inst) - 1e-9

    def test_fixes_empty_solution(self):
        inst = gen.uniform_disk(n=30, k=2, seed=1)
        empty = SectorSolution.empty(inst)
        improved = improve_sector_solution(inst, empty, EXACT)
        improved.verify(inst)
        assert improved.value(inst) > 0

    def test_idempotent_at_fixed_point(self):
        inst = gen.uniform_disk(n=30, k=2, seed=2)
        s1 = improve_sector_solution(
            inst, solve_sector_greedy(inst, EXACT), EXACT
        )
        s2 = improve_sector_solution(inst, s1, EXACT)
        assert s2.value(inst) == pytest.approx(s1.value(inst), abs=1e-9)

    def test_respects_radius(self):
        st = Station(
            position=(0.0, 0.0),
            antennas=(AntennaSpec(rho=2.0, capacity=10.0, radius=1.0),),
        )
        inst = SectorInstance(
            positions=np.array([[0.5, 0.0], [5.0, 0.0]]),
            demands=np.array([1.0, 1.0]),
            stations=(st,),
        )
        improved = improve_sector_solution(
            inst, SectorSolution.empty(inst), EXACT
        )
        improved.verify(inst)
        assert improved.assignment[1] == -1

    def test_stays_below_splittable_bound(self):
        inst = gen.clustered_towns(n=50, seed=4)
        sol = improve_sector_solution(
            inst, solve_sector_greedy(inst, GREEDY), GREEDY
        )
        _, ub = solve_sector_splittable(inst, sol.orientations)
        assert sol.value(inst) <= ub + 1e-6
