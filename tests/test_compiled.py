"""The compiled-instance layer: bit-identity, sharing, and eviction.

Three families of guarantees frozen here:

* **primitive identity** — sweeps built from a compiled view's stored sort
  (`CircularSweep.from_sorted`, `subset_sweep`) are indistinguishable from
  freshly constructed ones, including under duplicate-angle ties;
* **solver identity** — engine solves over the seeded generator suite are
  value- and assignment-identical whether the compiled view is built cold
  per call or served from the shared fingerprint cache;
* **cache discipline** — `solve_many` batches compile each distinct
  instance once (observable via ``engine.compile.*`` counters), the
  compile cache honours its LRU bound and eviction rebuilds cleanly, and
  compiled views never ride along in pickles.
"""

import copy
import pickle

import numpy as np
import pytest

from repro.core.compiled import (
    CompiledAngleInstance,
    CompiledSectorInstance,
    compile_instance,
    compile_items,
)
from repro.engine import SolveRequest, solve, solve_many
from repro.engine.cache import (
    COMPILE_CACHE,
    COMPILE_CACHE_MAXSIZE,
    RESULT_CACHE,
    RESULT_CACHE_MAXSIZE,
    clear_caches,
    shared_compiled,
)
from repro.geometry.sweep import CircularSweep
from repro.knapsack.greedy import solve_greedy
from repro.model import generators as gen
from repro.obs.metrics import get_registry
from repro.packing.single import best_rotation


def _counter(name: str) -> int:
    snap = get_registry().snapshot()
    return int(snap.get(name, {}).get("value", 0))


def _sweeps_equal(a: CircularSweep, b: CircularSweep) -> bool:
    return (
        a.n == b.n
        and a.width == b.width
        and np.array_equal(a.order, b.order)
        and np.array_equal(a.sorted_thetas, b.sorted_thetas)
        and np.array_equal(a.rank_of_original, b.rank_of_original)
        and np.array_equal(a._lo, b._lo)
        and np.array_equal(a._hi, b._hi)
    )


def _tied_thetas(n: int, seed: int) -> np.ndarray:
    """Angles with deliberate exact duplicates (stable-sort tie coverage)."""
    rng = np.random.default_rng(seed)
    distinct = rng.uniform(0.0, 2.0 * np.pi, size=max(2, n // 3))
    return distinct[rng.integers(0, distinct.size, size=n)]


class TestPrimitiveIdentity:
    """Compiled sweeps == fresh sweeps, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("width", [0.3, np.pi / 2, 2.0 * np.pi])
    def test_compiled_full_sweep_matches_fresh(self, seed, width):
        inst = gen.uniform_angles(n=40, k=2, seed=seed)
        compiled = compile_instance(inst)
        assert _sweeps_equal(compiled.sweep(width), CircularSweep(inst.thetas, width))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_subset_sweep_matches_fresh_sort_with_ties(self, seed):
        from repro.model.instance import AngleInstance

        thetas = _tied_thetas(60, seed)
        base = gen.uniform_angles(n=60, k=2, seed=seed)
        inst = AngleInstance(
            thetas=thetas, demands=base.demands, profits=base.profits,
            antennas=base.antennas,
        )
        compiled = compile_instance(inst)
        rng = np.random.default_rng(seed + 100)
        idx = np.flatnonzero(rng.random(60) < 0.5)
        sub = compiled.subset_sweep(idx, 1.1)
        fresh = CircularSweep(inst.thetas[idx], 1.1)
        assert _sweeps_equal(sub, fresh)
        # Windows agree on content, not just bounds.
        vals = rng.random(idx.size)
        assert np.allclose(sub.window_sums(vals), fresh.window_sums(vals))

    def test_subset_sweep_rejects_unsorted_indices(self):
        compiled = compile_instance(gen.uniform_angles(n=10, k=1, seed=0))
        with pytest.raises(ValueError, match="strictly increasing"):
            compiled.subset_sweep(np.array([3, 1]), 0.5)

    def test_full_length_subset_returns_memoized_sweep(self):
        compiled = compile_instance(gen.uniform_angles(n=12, k=1, seed=0))
        full = compiled.sweep(0.7)
        assert compiled.subset_sweep(np.arange(12), 0.7) is full

    def test_unique_window_ids_memoized_and_identical(self):
        thetas = _tied_thetas(50, 7)
        fresh = CircularSweep(thetas, 0.9)
        memo = CircularSweep(thetas, 0.9)
        first = memo.unique_window_ids()
        assert first is memo.unique_window_ids()  # memoized
        keep = np.ones(fresh.n, dtype=bool)
        keep[1:] = ~np.isclose(np.diff(fresh.sorted_thetas), 0.0, atol=1e-15)
        assert np.array_equal(first, np.flatnonzero(keep))

    def test_prefix_sums_reproduce_window_sums(self):
        inst = gen.clustered_angles(n=45, k=2, seed=3)
        compiled = compile_instance(inst)
        sweep = compiled.sweep(inst.antennas[0].rho)
        assert np.array_equal(
            sweep.window_sums_from_prefix(compiled.demand_prefix),
            sweep.window_sums(inst.demands),
        )
        assert np.array_equal(
            sweep.window_sums_from_prefix(compiled.profit_prefix),
            sweep.window_sums(inst.profits),
        )

    def test_compiled_arrays_are_read_only(self):
        compiled = compile_instance(gen.uniform_angles(n=15, k=2, seed=0))
        for arr in (compiled.order, compiled.sorted_thetas,
                    compiled.demand_prefix, compiled.profit_prefix):
            with pytest.raises(ValueError):
                arr[0] = 0


class TestRotationPathIdentity:
    """best_rotation: compiled fast path == from-scratch path."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_best_rotation_compiled_vs_fresh(self, seed):
        from repro.knapsack import get_solver

        inst = gen.uniform_angles(n=35, k=1, seed=seed)
        spec = inst.antennas[0]
        compiled = compile_instance(inst)
        oracle = get_solver("greedy")
        plain = best_rotation(inst.thetas, inst.demands, inst.profits, spec, oracle)
        fast = best_rotation(
            inst.thetas, inst.demands, inst.profits, spec, oracle,
            sweep=compiled.sweep(spec.rho),
            demand_prefix=compiled.demand_prefix,
            profit_prefix=compiled.profit_prefix,
        )
        assert fast.value == plain.value
        assert fast.alpha == plain.alpha
        assert np.array_equal(fast.selected, plain.selected)


ANGLE_ALGOS = ("greedy", "adaptive", "greedy+ls", "dp-disjoint",
               "shifting", "insertion")
SECTOR_ALGOS = ("greedy", "greedy+ls", "independent")


class TestEngineValueIdentity:
    """Cold per-call compiles and shared compiled views solve identically."""

    def _solve_twice(self, instance, family, algorithm, eps=0.5):
        req = SolveRequest(instance=instance, family=family,
                           algorithm=algorithm, eps=eps, use_cache=False)
        clear_caches()
        cold = solve(req)  # compile miss: built from scratch
        warm = solve(req)  # compile hit: the shared view
        return cold, warm

    @pytest.mark.parametrize("algorithm", ANGLE_ALGOS)
    @pytest.mark.parametrize("maker,seed", [
        (gen.uniform_angles, 0), (gen.uniform_angles, 1),
        (gen.clustered_angles, 0), (gen.hotspot_angles, 2),
    ])
    def test_angle_solvers_value_identical(self, algorithm, maker, seed):
        inst = maker(n=30, k=2, seed=seed)
        cold, warm = self._solve_twice(inst, "angle", algorithm)
        assert warm.value == cold.value
        assert np.array_equal(warm.solution.assignment, cold.solution.assignment)
        assert np.array_equal(warm.solution.orientations, cold.solution.orientations)

    @pytest.mark.parametrize("algorithm", SECTOR_ALGOS)
    @pytest.mark.parametrize("maker,seed", [
        (gen.uniform_disk, 0), (gen.clustered_towns, 1),
    ])
    def test_sector_solvers_value_identical(self, algorithm, maker, seed):
        inst = maker(n=25, seed=seed)
        cold, warm = self._solve_twice(inst, "sector", algorithm)
        assert warm.value == cold.value
        assert np.array_equal(warm.solution.assignment, cold.solution.assignment)

    def test_sector_exact_value_identical(self):
        inst = gen.uniform_disk(n=10, k=2, seed=0)
        cold, warm = self._solve_twice(inst, "sector", "exact")
        assert warm.value == cold.value


class TestKnapsackCompiledItems:
    """The greedy density-order fast path is tie-for-tie identical."""

    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_with_compiled_order_identical(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        # Duplicate weights/profits force density ties.
        w = rng.integers(1, 6, size=n).astype(np.float64)
        p = rng.integers(1, 6, size=n).astype(np.float64)
        w[rng.random(n) < 0.2] = 0.0  # zero-weight (infinite density) items
        cap = float(w.sum()) / 3.0
        plain = solve_greedy(w, p, cap)
        fast = solve_greedy(w, p, cap, compiled=compile_items(w, p))
        assert fast.value == plain.value
        assert fast.weight == plain.weight
        assert np.array_equal(fast.selected, plain.selected)

    def test_engine_knapsack_accepts_compiled_context(self):
        w, p = [2.0, 3.0, 1.0], [3.0, 4.0, 2.0]
        report = solve(SolveRequest(instance=(w, p, 4.0), algorithm="greedy",
                                    use_cache=False))
        plain = solve_greedy(np.array(w), np.array(p), 4.0)
        assert report.value == plain.value


class TestSolveManyCompileOnce:
    """A repeated batch compiles its instance exactly once (satellite)."""

    def test_repeated_batch_hits_compile_cache(self):
        inst = gen.uniform_angles(n=20, k=2, seed=0)
        requests = [
            SolveRequest(instance=inst, algorithm="greedy", eps=0.5,
                         use_cache=False, label=f"r{i}")
            for i in range(3)
        ]
        clear_caches()
        hits0 = _counter("engine.compile.hits")
        misses0 = _counter("engine.compile.misses")
        reports = solve_many(requests, workers=1)
        assert [r.error for r in reports] == [None, None, None]
        assert _counter("engine.compile.misses") - misses0 == 1
        assert _counter("engine.compile.hits") - hits0 == 2
        assert len({r.value for r in reports}) == 1

    def test_distinct_instances_compile_separately(self):
        requests = [
            SolveRequest(instance=gen.uniform_angles(n=20, k=2, seed=s),
                         algorithm="greedy", eps=0.5, use_cache=False)
            for s in (0, 1)
        ]
        clear_caches()
        misses0 = _counter("engine.compile.misses")
        solve_many(requests, workers=1)
        assert _counter("engine.compile.misses") - misses0 == 2


class TestCompileCacheEviction:
    """LRU bounds cover compiled views; eviction rebuilds cleanly."""

    def teardown_method(self):
        COMPILE_CACHE.resize(COMPILE_CACHE_MAXSIZE)
        clear_caches()

    def test_lru_bound_and_clean_rebuild(self):
        clear_caches()
        COMPILE_CACHE.resize(2)
        insts = [gen.uniform_angles(n=12, k=1, seed=s) for s in range(3)]
        evict0 = _counter("engine.compile.evictions")
        views = [shared_compiled(i) for i in insts]
        assert len(COMPILE_CACHE) == 2
        assert _counter("engine.compile.evictions") - evict0 == 1
        # Seed 0 was evicted (LRU-first): re-request rebuilds a fresh,
        # equivalent view instead of resurrecting the evicted object.
        rebuilt = shared_compiled(insts[0])
        assert rebuilt is not views[0]
        assert np.array_equal(rebuilt.order, views[0].order)
        # The evicted view still works for anyone holding it (no orphaning).
        assert _sweeps_equal(views[0].sweep(0.8), rebuilt.sweep(0.8))

    def test_clear_caches_does_not_leak_object_memo(self):
        # The per-object memo (instance.compile()) must never satisfy a
        # shared-cache miss: after clear_caches a shared compile is rebuilt
        # from scratch, which is what keeps cold benchmarks honest.
        inst = gen.uniform_angles(n=12, k=1, seed=0)
        memo = inst.compile()
        assert inst.compile() is memo  # per-object memo is stable
        clear_caches()
        fresh = shared_compiled(inst)
        assert fresh is not memo
        assert shared_compiled(inst) is fresh  # and then cached

    def test_result_and_compile_caches_bounded_together(self):
        clear_caches()
        RESULT_CACHE.resize(2)
        COMPILE_CACHE.resize(2)
        try:
            for s in range(4):
                inst = gen.uniform_angles(n=12, k=1, seed=s)
                solve(SolveRequest(instance=inst, algorithm="greedy", eps=0.5))
            assert len(RESULT_CACHE) == 2
            assert len(COMPILE_CACHE) == 2
        finally:
            RESULT_CACHE.resize(RESULT_CACHE_MAXSIZE)


class TestCompiledViewLifecycle:
    """Memoization and serialization discipline of compiled views."""

    def test_instance_compile_is_memoized(self):
        inst = gen.uniform_angles(n=10, k=1, seed=0)
        assert inst.compile() is inst.compile()
        assert isinstance(inst.compile(), CompiledAngleInstance)

    def test_sector_compile_is_memoized(self):
        inst = gen.uniform_disk(n=10, seed=0)
        assert inst.compile() is inst.compile()
        assert isinstance(inst.compile(), CompiledSectorInstance)

    def test_pickle_drops_compiled_view(self):
        for inst in (gen.uniform_angles(n=10, k=1, seed=0),
                     gen.uniform_disk(n=10, seed=0)):
            inst.compile()
            assert "_compiled" in inst.__dict__
            clone = pickle.loads(pickle.dumps(inst))
            assert "_compiled" not in clone.__dict__
            assert clone == inst

    def test_deepcopy_drops_compiled_view(self):
        inst = gen.uniform_angles(n=10, k=1, seed=0)
        inst.compile()
        clone = copy.deepcopy(inst)
        assert "_compiled" not in clone.__dict__

    def test_shared_compiled_spans_equal_content(self):
        inst = gen.uniform_angles(n=10, k=1, seed=0)
        twin = pickle.loads(pickle.dumps(inst))
        clear_caches()
        assert shared_compiled(inst) is shared_compiled(twin)

    def test_compile_instance_rejects_unknown_payloads(self):
        with pytest.raises(TypeError, match="cannot compile"):
            compile_instance(object())

    def test_sector_eligibility_matches_reachable_mask(self):
        inst = gen.clustered_towns(n=20, seed=0)
        compiled = compile_instance(inst)
        masks, thetas, rs = compiled.eligibility()
        table = inst.antenna_table()
        assert len(masks) == len(table)
        for g, (_, s_id, spec) in enumerate(table):
            st = compiled.station(s_id)
            assert np.array_equal(masks[g], st.rs <= spec.radius * (1.0 + 1e-12))
            assert thetas[g] is st.thetas
            assert rs[g] is st.rs
