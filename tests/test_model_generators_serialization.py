"""Tests for instance generators and JSON serialization."""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.model import generators as gen
from repro.model.instance import AngleInstance, SectorInstance
from repro.model.serialization import (
    angle_instance_from_dict,
    angle_instance_to_dict,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_solution,
    save_instance,
    save_solution,
    sector_instance_from_dict,
    sector_instance_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from repro.model.solution import AngleSolution, SectorSolution


class TestAngleGenerators:
    @pytest.mark.parametrize("name,fn", sorted(gen.ANGLE_FAMILIES.items()))
    def test_family_produces_valid_instance(self, name, fn):
        inst = fn(seed=7)
        assert isinstance(inst, AngleInstance)
        assert inst.n > 0
        assert (inst.demands > 0).all()
        assert (inst.thetas >= 0).all() and (inst.thetas < TWO_PI).all()

    @pytest.mark.parametrize("name,fn", sorted(gen.ANGLE_FAMILIES.items()))
    def test_family_deterministic(self, name, fn):
        a, b = fn(seed=3), fn(seed=3)
        assert a == b

    @pytest.mark.parametrize("name,fn", sorted(gen.ANGLE_FAMILIES.items()))
    def test_family_seed_sensitive(self, name, fn):
        a, b = fn(seed=3), fn(seed=4)
        assert a != b

    def test_uniform_capacity_fraction(self):
        inst = gen.uniform_angles(n=50, k=2, capacity_fraction=0.2, seed=0)
        cap = inst.antennas[0].capacity
        assert cap == pytest.approx(0.2 * inst.total_demand) or cap >= inst.demands.min()

    def test_adversarial_structure(self):
        inst = gen.adversarial_greedy_angles(blocks=3, eps=0.05, seed=1)
        assert inst.n == 9
        assert inst.antennas[0].capacity == 2.0
        # each block has one 1+eps and two 1.0 demands
        assert np.isclose(np.sort(inst.demands)[-3:], 1.05).all()

    def test_adversarial_rejects_wide_rho(self):
        with pytest.raises(ValueError):
            gen.adversarial_greedy_angles(blocks=8, rho=2.0)

    def test_adversarial_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            gen.adversarial_greedy_angles(blocks=0)

    def test_subset_sum_integer_demands(self):
        inst = gen.subset_sum_angles(n=20, seed=2)
        assert np.allclose(inst.demands, np.round(inst.demands))

    def test_mixed_antennas_validation(self):
        with pytest.raises(ValueError):
            gen.mixed_antenna_angles(widths=(1.0,), capacity_fractions=(0.1, 0.2))

    def test_demand_distributions(self):
        for dist in ("uniform", "exponential", "integer", "constant"):
            inst = gen.uniform_angles(n=10, demand_dist=dist, seed=0)
            assert (inst.demands > 0).all()
        with pytest.raises(ValueError):
            gen.uniform_angles(n=10, demand_dist="bogus", seed=0)

    def test_rng_object_accepted(self):
        rng = np.random.default_rng(5)
        inst = gen.uniform_angles(n=10, seed=rng)
        assert inst.n == 10


class TestSectorGenerators:
    @pytest.mark.parametrize("name,fn", sorted(gen.SECTOR_FAMILIES.items()))
    def test_family_produces_valid_instance(self, name, fn):
        inst = fn(seed=7)
        assert isinstance(inst, SectorInstance)
        assert inst.n > 0
        assert inst.m >= 1

    @pytest.mark.parametrize("name,fn", sorted(gen.SECTOR_FAMILIES.items()))
    def test_family_deterministic(self, name, fn):
        assert fn(seed=3) == fn(seed=3)

    def test_disk_occupancy_filters(self):
        inst = gen.uniform_disk(n=200, radius=5.0, occupancy=1.5, seed=0)
        mask = inst.reachable_mask(0)
        assert 0 < mask.sum() < 200

    def test_grid_station_count(self):
        inst = gen.grid_city(grid=2, seed=0)
        assert inst.m == 4
        assert inst.total_antennas == 12

    def test_power_law_metro_chunk_invariant(self):
        # Regression: the streamed builder must produce the identical
        # instance whatever chunk size it streams in — generator draws
        # are element-sequential, so splitting one draw into consecutive
        # chunked draws concatenates to the same stream.  An earlier
        # revision drew per-chunk scale factors and broke this.
        base = gen.power_law_metro(n=700, towns=3, seed=21, chunk=1 << 16)
        for chunk in (137, 1_000, 699, 700):
            other = gen.power_law_metro(n=700, towns=3, seed=21, chunk=chunk)
            assert np.array_equal(other.positions, base.positions), chunk
            assert np.array_equal(other.demands, base.demands), chunk
            assert other == base


class TestSerialization:
    def test_angle_round_trip(self):
        inst = gen.clustered_angles(n=20, seed=1)
        d = angle_instance_to_dict(inst)
        back = angle_instance_from_dict(d)
        assert back == inst

    def test_sector_round_trip(self):
        inst = gen.clustered_towns(n=30, seed=1)
        d = sector_instance_to_dict(inst)
        back = sector_instance_from_dict(d)
        assert back == inst

    def test_generic_dispatch(self):
        a = gen.uniform_angles(n=5, seed=0)
        s = gen.uniform_disk(n=5, seed=0)
        assert instance_from_dict(instance_to_dict(a)) == a
        assert instance_from_dict(instance_to_dict(s)) == s

    def test_kind_mismatch_raises(self):
        a = gen.uniform_angles(n=5, seed=0)
        d = angle_instance_to_dict(a)
        with pytest.raises(ValueError):
            sector_instance_from_dict(d)
        d["kind"] = "bogus"
        with pytest.raises(ValueError):
            instance_from_dict(d)

    def test_file_round_trip(self, tmp_path):
        inst = gen.uniform_angles(n=8, seed=0)
        p = tmp_path / "inst.json"
        save_instance(inst, p)
        assert load_instance(p) == inst

    def test_sector_file_round_trip(self, tmp_path):
        inst = gen.grid_city(n=12, grid=1, seed=0)
        p = tmp_path / "inst.json"
        save_instance(inst, p)
        assert load_instance(p) == inst

    def test_infinite_radius_round_trip(self):
        inst = gen.uniform_angles(n=3, seed=0)
        back = angle_instance_from_dict(angle_instance_to_dict(inst))
        assert back.antennas[0].radius == inst.antennas[0].radius

    def test_solution_round_trip(self, tmp_path):
        sol = AngleSolution(
            orientations=np.array([0.5, 1.5]),
            assignment=np.array([0, 1, -1]),
        )
        d = solution_to_dict(sol)
        back = solution_from_dict(d)
        assert isinstance(back, AngleSolution)
        assert np.array_equal(back.assignment, sol.assignment)
        p = tmp_path / "sol.json"
        save_solution(sol, p)
        loaded = load_solution(p)
        assert np.array_equal(loaded.orientations, sol.orientations)

    def test_sector_solution_round_trip(self):
        sol = SectorSolution(
            orientations=np.array([0.5]), assignment=np.array([0, -1])
        )
        back = solution_from_dict(solution_to_dict(sol))
        assert isinstance(back, SectorSolution)
