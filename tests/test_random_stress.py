"""Randomized stress: medium instances through the whole solver suite.

Broader than the unit tests (bigger n, every family) but bounded to keep
the suite fast; every solution is verified and cross-checked against the
cheap certified bounds.  This is the test that catches numerical-edge
regressions (wrap-around boundaries, near-capacity sums) that tiny
handcrafted cases miss.
"""

import numpy as np
import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.bounds import combined_upper_bound
from repro.packing.covering import cover_instance, verify_cover
from repro.packing.insertion import solve_insertion
from repro.packing.local_search import improve_solution
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.flow import splittable_value
from repro.packing.sectors import (
    improve_sector_solution,
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)
from repro.packing.shifting import solve_shifting

GREEDY = get_solver("greedy")
FPTAS = get_solver("fptas", eps=0.2)

ANGLE_CASES = [
    ("uniform", dict(n=120, k=4)),
    ("clustered", dict(n=120, k=4)),
    ("hotspot", dict(n=120, k=3)),
    ("subset_sum", dict(n=80, k=2)),
    ("mixed", dict(n=100)),
]


@pytest.mark.parametrize("family,kwargs", ANGLE_CASES)
@pytest.mark.parametrize("seed", [101, 202])
def test_angle_suite_stress(family, kwargs, seed):
    inst = gen.ANGLE_FAMILIES[family](seed=seed, **kwargs)
    ub = combined_upper_bound(inst)

    greedy = solve_greedy_multi(inst, GREEDY)
    greedy.verify(inst)
    assert greedy.value(inst) <= ub + 1e-6

    polished = improve_solution(inst, greedy, FPTAS)
    polished.verify(inst)
    assert polished.value(inst) >= greedy.value(inst) - 1e-9
    assert polished.value(inst) <= ub + 1e-6

    split = splittable_value(inst, polished.orientations)
    assert split >= polished.value(inst) - 1e-6

    if inst.has_uniform_antennas:
        for disjoint_solver in (
            lambda: solve_non_overlapping_dp(inst, GREEDY),
            lambda: solve_shifting(inst, GREEDY, t=8),
            lambda: solve_insertion(inst, GREEDY),
        ):
            sol = disjoint_solver()
            assert sol.violations(inst, require_disjoint=True) == []
            assert sol.value(inst) <= ub + 1e-6


@pytest.mark.parametrize("family,kwargs", [
    ("disk", dict(n=150)),
    ("towns", dict(n=150)),
    ("grid", dict(n=150, grid=2)),
    ("macro_micro", dict(n=150)),
])
@pytest.mark.parametrize("seed", [303, 404])
def test_sector_suite_stress(family, kwargs, seed):
    inst = gen.SECTOR_FAMILIES[family](seed=seed, **kwargs)
    greedy = solve_sector_greedy(inst, GREEDY, adaptive=False)
    greedy.verify(inst)
    improved = improve_sector_solution(inst, greedy, GREEDY, max_rounds=2)
    improved.verify(inst)
    assert improved.value(inst) >= greedy.value(inst) - 1e-9
    _, ub = solve_sector_splittable(inst, improved.orientations)
    assert improved.value(inst) <= ub + 1e-6

    baseline = solve_sector_independent(inst, GREEDY)
    baseline.verify(inst)


@pytest.mark.parametrize("seed", [505, 606])
def test_cover_stress(seed):
    inst = gen.clustered_angles(n=100, k=1, capacity_fraction=0.08, seed=seed)
    res = cover_instance(inst, GREEDY)
    verify_cover(inst.thetas, inst.demands, inst.antennas[0], res)
    assert res.antennas_used >= res.lower_bound


def test_duplicate_angles_stress():
    """Many exactly-coincident customers (sweep tie-breaking hot spot)."""
    rng = np.random.default_rng(7)
    base = rng.uniform(0, 2 * np.pi, 10)
    thetas = np.repeat(base, 8)  # 80 customers on 10 distinct angles
    from repro.model.antenna import AntennaSpec
    from repro.model.instance import AngleInstance

    inst = AngleInstance(
        thetas=thetas,
        demands=rng.uniform(0.2, 1.0, thetas.size),
        antennas=tuple(AntennaSpec(rho=1.0, capacity=5.0) for _ in range(3)),
    )
    for solver in (
        lambda: solve_greedy_multi(inst, GREEDY),
        lambda: solve_non_overlapping_dp(inst, GREEDY),
        lambda: solve_insertion(inst, GREEDY),
    ):
        sol = solver()
        assert sol.violations(inst) == []


def test_extreme_demand_spread():
    """Demands spanning 6 orders of magnitude must not break tolerances."""
    rng = np.random.default_rng(8)
    from repro.model.antenna import AntennaSpec
    from repro.model.instance import AngleInstance

    demands = 10.0 ** rng.uniform(-3, 3, 60)
    inst = AngleInstance(
        thetas=rng.uniform(0, 2 * np.pi, 60),
        demands=demands,
        antennas=tuple(
            AntennaSpec(rho=2.0, capacity=0.3 * demands.sum()) for _ in range(2)
        ),
    )
    sol = solve_greedy_multi(inst, GREEDY)
    sol.verify(inst)
    assert sol.value(inst) <= combined_upper_bound(inst) + 1e-6
