"""Tests for the unit-demand integral solver and mixed-radius stations."""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model import generators as gen
from repro.packing.exact import solve_exact_fixed_orientations
from repro.packing.flow import (
    solve_splittable,
    solve_unit_demand_fixed,
    splittable_value,
)
from repro.packing.sectors import (
    improve_sector_solution,
    solve_sector_greedy,
    solve_sector_splittable,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def unit_instance(n, k, seed, cap=4):
    rng = np.random.default_rng(seed)
    return AngleInstance(
        thetas=rng.uniform(0, TWO_PI, n),
        demands=np.ones(n),
        antennas=tuple(AntennaSpec(rho=2.0, capacity=float(cap)) for _ in range(k)),
    )


class TestUnitDemandFixed:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exact_bnb(self, seed):
        inst = unit_instance(12, 2, seed)
        rng = np.random.default_rng(seed)
        ori = rng.uniform(0, TWO_PI, 2)
        flow_sol = solve_unit_demand_fixed(inst, ori)
        flow_sol.verify(inst)
        ref = solve_exact_fixed_orientations(inst, ori).value(inst)
        assert flow_sol.value(inst) == pytest.approx(ref)

    @pytest.mark.parametrize("seed", range(4))
    def test_integrality_gap_vanishes(self, seed):
        """For unit demands, splittable == unsplittable (E6 limit case)."""
        inst = unit_instance(15, 2, seed, cap=5)
        ori = np.array([0.0, 3.0])
        split = splittable_value(inst, ori)
        integral = solve_unit_demand_fixed(inst, ori).value(inst)
        assert integral == pytest.approx(split)

    def test_requires_unit_demands(self):
        rng = np.random.default_rng(0)
        inst = AngleInstance(
            thetas=rng.uniform(0, TWO_PI, 5),
            demands=rng.uniform(0.5, 2.0, 5),
            antennas=(AntennaSpec(rho=1.0, capacity=3.0),),
        )
        with pytest.raises(ValueError):
            solve_unit_demand_fixed(inst, [0.0])

    def test_requires_profit_equals_demand(self):
        inst = AngleInstance(
            thetas=np.array([0.1]),
            demands=np.ones(1),
            profits=np.array([5.0]),
            antennas=(AntennaSpec(rho=1.0, capacity=3.0),),
        )
        with pytest.raises(ValueError):
            solve_unit_demand_fixed(inst, [0.0])

    def test_empty(self):
        inst = AngleInstance(
            thetas=np.empty(0), demands=np.empty(0),
            antennas=(AntennaSpec(rho=1.0, capacity=3.0),),
        )
        sol = solve_unit_demand_fixed(inst, [0.0])
        assert sol.value(inst) == 0.0

    def test_fractional_capacity_floored(self):
        inst = unit_instance(5, 1, 0, cap=2)
        inst = inst.with_antennas((AntennaSpec(rho=TWO_PI, capacity=2.9),))
        sol = solve_unit_demand_fixed(inst, [0.0])
        sol.verify(inst)
        assert sol.value(inst) == pytest.approx(2.0)  # floor(2.9) = 2 units


class TestMacroMicroFamily:
    def test_generator_valid(self):
        inst = gen.macro_micro(n=50, seed=1)
        assert inst.total_antennas == 3
        radii = [spec.radius for _, _, spec in inst.antenna_table()]
        assert len(set(radii)) == 2  # genuinely mixed radii

    def test_deterministic(self):
        assert gen.macro_micro(seed=2) == gen.macro_micro(seed=2)

    def test_greedy_respects_per_antenna_radius(self):
        inst = gen.macro_micro(n=80, seed=3)
        sol = solve_sector_greedy(inst, GREEDY)
        sol.verify(inst)  # the verifier checks per-antenna radii
        # micro antennas never serve customers beyond their short radius
        _, rs = inst.station_polar(0)
        for g, _, spec in inst.antenna_table():
            members = np.flatnonzero(sol.assignment == g)
            if members.size:
                assert (rs[members] <= spec.radius * (1 + 1e-9)).all()

    def test_local_search_on_mixed_radii(self):
        inst = gen.macro_micro(n=60, seed=4)
        base = solve_sector_greedy(inst, GREEDY)
        improved = improve_sector_solution(inst, base, GREEDY)
        improved.verify(inst)
        assert improved.value(inst) >= base.value(inst) - 1e-9

    def test_splittable_bound_on_mixed_radii(self):
        inst = gen.macro_micro(n=60, seed=5)
        sol = solve_sector_greedy(inst, GREEDY)
        _, ub = solve_sector_splittable(inst, sol.orientations)
        assert sol.value(inst) <= ub + 1e-6

    def test_in_family_registry(self):
        assert "macro_micro" in gen.SECTOR_FAMILIES
